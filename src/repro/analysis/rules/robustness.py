"""Robustness rules.

Fault handling in library code must be explicit and bounded.  A bare
``except:`` swallows everything — including ``KeyboardInterrupt``,
``SystemExit`` and the simulator's own invariant errors — turning an
injected fault into silent corruption instead of a visible failure, so
:class:`BareExceptRule` forbids it.  Likewise, a wait is only robust if
it can end: a ``timeout=`` or ``poll_interval=`` literal that is zero
or negative either never fires or spins, and under a blackout or
server-death fault the caller hangs forever.  Both patterns are exactly
the ones the fault-injection matrix (:mod:`repro.faults`) exists to
flush out, so ROB001 keeps them from entering the library in the first
place.

Guarantee thresholds are the scenario DSL's version of the same
contract.  A scenario's pass/fail bar belongs in its embedded
:class:`~repro.obs.health.SloSpec` guarantees block (or a
unit-suffixed :class:`~repro.testbed.specs.ScenarioSpec` field), where
it is declared once, validated, JSON-round-tripped, and archived with
the matrix verdict.  A numeric literal compared against a
unit-suffixed quantity inside scenario-wiring code is a guarantee that
escaped the spec — :class:`ScenarioThresholdRule` (ROB002) extends the
OBS004 machinery to keep scenario modules threshold-free.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.engine import Finding, Rule
from repro.analysis.rules import register
from repro.analysis.rules.observability import (
    numeric_literal,
    unit_suffixed_name,
)

#: Keyword arguments naming a bounded wait; a non-positive literal
#: makes the wait degenerate (never fires or busy-spins).
WAIT_KEYWORDS = frozenset({"timeout", "poll_interval"})


def _literal_number(node: ast.expr) -> Optional[float]:
    """The numeric value of a literal expression, None if dynamic.

    Handles plain constants and a leading unary minus; booleans are not
    numbers here.
    """
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _literal_number(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)) \
            and not isinstance(node.value, bool):
        return float(node.value)
    return None


@register
class BareExceptRule(Rule):
    """Forbid bare ``except:`` and degenerate wait literals."""

    rule_id = "ROB001"
    summary = (
        "no bare 'except:' in library code (name the exceptions; bare "
        "handlers swallow faults and interrupts), and no literal "
        "timeout=/poll_interval= <= 0 (a wait must be able to end)"
    )

    def run(self) -> List[Finding]:
        """Only ``repro`` library modules are in scope.

        Scripts, tests, and benchmarks live outside the ``repro``
        package and are never matched; within it, no module is exempt —
        robustness conventions apply to the CLI and analysis layers too.
        """
        if len(self.module.module) < 2 or self.module.module[0] != "repro":
            return []
        return super().run()

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        """Flag ``except:`` with no exception type."""
        if node.type is None:
            self.report(
                node,
                "bare 'except:' swallows KeyboardInterrupt/SystemExit and "
                "hides injected faults; catch named exception types",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        """Flag literal non-positive ``timeout=`` / ``poll_interval=``."""
        for keyword in node.keywords:
            if keyword.arg not in WAIT_KEYWORDS:
                continue
            value = _literal_number(keyword.value)
            if value is not None and value <= 0:
                self.report(
                    keyword.value,
                    f"literal {keyword.arg}={value:g} never expires (or "
                    "spins); waits in library code must be positive and "
                    "bounded",
                )
        self.generic_visit(node)


#: Modules that *are* scenario-wiring code, always in ROB002 scope.
_SCENARIO_MODULES = frozenset({
    "repro.testbed.scenarios",
    "repro.testbed.specs",
    "repro.testbed.matrix",
})

#: Scenario/spec names whose import (directly or via the
#: ``repro.testbed`` facade) marks the importer as scenario-wiring
#: code and puts it in ROB002 scope.
_SCENARIO_IMPORT_NAMES = frozenset({
    "Scenario", "SCENARIOS", "run_scenario",
    "ScenarioSpec", "TopologySpec", "spec_for_scenario",
    "chaos_matrix_spec", "default_specs", "write_default_specs",
    "load_spec", "load_spec_dir", "save_spec", "run_spec",
    "MatrixOptions", "run_matrix",
})


@register
class ScenarioThresholdRule(Rule):
    """Guarantee thresholds must live in the spec, not scenario code.

    Flags numeric literals (other than the structural constants 0, 1
    and -1) compared against a unit-suffixed name — ``duration_s``,
    ``p99_abs_error_ms``, ``drop_rate_ratio`` — inside scenario-wiring
    code.  Such a comparison hard-codes a pass/fail bar the scenario
    DSL exists to declare: it belongs in the spec's embedded
    :class:`~repro.obs.health.SloSpec` guarantees block (judged by the
    matrix runner and archived with the verdict) or a validated
    unit-suffixed :class:`~repro.testbed.specs.ScenarioSpec` field.
    """

    rule_id = "ROB002"
    summary = (
        "scenario/spec modules must not hard-code guarantee thresholds; "
        "a numeric literal compared against a unit-suffixed name "
        "belongs in an SloSpec guarantees block or a ScenarioSpec field"
    )

    #: Structural constants (empty/disabled/sign checks), never bars.
    _EXEMPT = frozenset({0, 1, -1})

    def run(self) -> List[Finding]:
        """Scope: the scenario/spec/matrix modules plus any repro
        module importing scenario machinery from them."""
        if len(self.module.module) < 2 or self.module.module[0] != "repro":
            return []
        if self.module.dotted() not in _SCENARIO_MODULES \
                and not self._imports_scenarios():
            return []
        return super().run()

    def _imports_scenarios(self) -> bool:
        for node in ast.walk(self.module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module in _SCENARIO_MODULES:
                    return True
                if node.module == "repro.testbed" and any(
                    alias.name in _SCENARIO_IMPORT_NAMES
                    for alias in node.names
                ):
                    return True
            elif isinstance(node, ast.Import):
                if any(alias.name in _SCENARIO_MODULES
                       for alias in node.names):
                    return True
        return False

    def visit_Compare(self, node: ast.Compare) -> None:
        """Flag literal-vs-unit-suffixed-name comparison operands."""
        sides = [node.left, *node.comparators]
        for left, right in zip(sides, sides[1:]):
            for literal_node, other in ((left, right), (right, left)):
                value = numeric_literal(literal_node)
                if value is None or value in self._EXEMPT:
                    continue
                name = unit_suffixed_name(other)
                if name is None:
                    continue
                self.report(
                    literal_node,
                    f"guarantee threshold literal {value!r} compared "
                    f"against '{name}' in scenario code; declare it in "
                    "the spec's SloSpec guarantees block or a "
                    "unit-suffixed ScenarioSpec field",
                )
        self.generic_visit(node)

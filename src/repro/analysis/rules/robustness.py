"""Robustness rules.

Fault handling in library code must be explicit and bounded.  A bare
``except:`` swallows everything — including ``KeyboardInterrupt``,
``SystemExit`` and the simulator's own invariant errors — turning an
injected fault into silent corruption instead of a visible failure, so
:class:`BareExceptRule` forbids it.  Likewise, a wait is only robust if
it can end: a ``timeout=`` or ``poll_interval=`` literal that is zero
or negative either never fires or spins, and under a blackout or
server-death fault the caller hangs forever.  Both patterns are exactly
the ones the fault-injection matrix (:mod:`repro.faults`) exists to
flush out, so ROB001 keeps them from entering the library in the first
place.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.engine import Finding, Rule
from repro.analysis.rules import register

#: Keyword arguments naming a bounded wait; a non-positive literal
#: makes the wait degenerate (never fires or busy-spins).
WAIT_KEYWORDS = frozenset({"timeout", "poll_interval"})


def _literal_number(node: ast.expr) -> Optional[float]:
    """The numeric value of a literal expression, None if dynamic.

    Handles plain constants and a leading unary minus; booleans are not
    numbers here.
    """
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _literal_number(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)) \
            and not isinstance(node.value, bool):
        return float(node.value)
    return None


@register
class BareExceptRule(Rule):
    """Forbid bare ``except:`` and degenerate wait literals."""

    rule_id = "ROB001"
    summary = (
        "no bare 'except:' in library code (name the exceptions; bare "
        "handlers swallow faults and interrupts), and no literal "
        "timeout=/poll_interval= <= 0 (a wait must be able to end)"
    )

    def run(self) -> List[Finding]:
        """Only ``repro`` library modules are in scope.

        Scripts, tests, and benchmarks live outside the ``repro``
        package and are never matched; within it, no module is exempt —
        robustness conventions apply to the CLI and analysis layers too.
        """
        if len(self.module.module) < 2 or self.module.module[0] != "repro":
            return []
        return super().run()

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        """Flag ``except:`` with no exception type."""
        if node.type is None:
            self.report(
                node,
                "bare 'except:' swallows KeyboardInterrupt/SystemExit and "
                "hides injected faults; catch named exception types",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        """Flag literal non-positive ``timeout=`` / ``poll_interval=``."""
        for keyword in node.keywords:
            if keyword.arg not in WAIT_KEYWORDS:
                continue
            value = _literal_number(keyword.value)
            if value is not None and value <= 0:
                self.report(
                    keyword.value,
                    f"literal {keyword.arg}={value:g} never expires (or "
                    "spins); waits in library code must be positive and "
                    "bounded",
                )
        self.generic_visit(node)

"""Time-unit safety rules.

The codebase's convention is that every variable holding a quantity of
time carries a unit suffix: ``period_s``, ``rmse_ms``, ``offset_us``,
``correction_ns``.  These rules exploit that convention to catch the
exact confusion class behind offset-magnitude bugs — adding seconds to
milliseconds, comparing across units, or mixing NTP wire-format
fixed-point bytes with float seconds.

Multiplication and division are deliberately exempt: ``x_ms / 1000`` and
``rate * interval_s`` are how conversions are written.
"""

from __future__ import annotations

import ast
from typing import Optional, Tuple

from repro.analysis.engine import Rule
from repro.analysis.rules import register
from repro.analysis.rules.base import (
    NTP_SECONDS_FUNCS,
    NTP_WIRE_FUNCS,
    call_func_name,
    expr_unit,
    is_number_constant,
)


def _mixed(left: ast.AST, right: ast.AST) -> Optional[Tuple[str, str]]:
    lu, ru = expr_unit(left), expr_unit(right)
    if lu is not None and ru is not None and lu != ru:
        return lu, ru
    return None


@register
class MixedUnitArithmeticRule(Rule):
    """Flag ``+``/``-`` between operands with different unit suffixes."""

    rule_id = "UNIT001"
    summary = (
        "no addition/subtraction between quantities whose _s/_ms/_us/_ns "
        "suffixes disagree; convert explicitly first"
    )

    def visit_BinOp(self, node: ast.BinOp) -> None:
        """Flag +/- whose operands declare different units."""
        if isinstance(node.op, (ast.Add, ast.Sub)):
            mix = _mixed(node.left, node.right)
            if mix is not None:
                op = "+" if isinstance(node.op, ast.Add) else "-"
                self.report(
                    node,
                    f"arithmetic '{op}' mixes units: left is declared "
                    f"'{mix[0]}', right is declared '{mix[1]}'",
                )
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        """Flag +=/-= whose target and value declare different units."""
        if isinstance(node.op, (ast.Add, ast.Sub)):
            mix = _mixed(node.target, node.value)
            if mix is not None:
                op = "+=" if isinstance(node.op, ast.Add) else "-="
                self.report(
                    node,
                    f"augmented '{op}' mixes units: target is declared "
                    f"'{mix[0]}', value is declared '{mix[1]}'",
                )
        self.generic_visit(node)


@register
class MixedUnitComparisonRule(Rule):
    """Flag comparisons between operands with different unit suffixes."""

    rule_id = "UNIT002"
    summary = (
        "no comparison between quantities whose _s/_ms/_us/_ns suffixes "
        "disagree; a threshold in the wrong unit is off by 1000x"
    )

    def visit_Compare(self, node: ast.Compare) -> None:
        """Flag comparisons whose operands declare different units."""
        operands = [node.left] + list(node.comparators)
        for left, right in zip(operands, operands[1:]):
            mix = _mixed(left, right)
            if mix is not None:
                self.report(
                    node,
                    f"comparison mixes units: '{mix[0]}' vs '{mix[1]}'",
                )
        self.generic_visit(node)


def _ntp_kind(node: ast.AST) -> Optional[str]:
    """'wire' / 'seconds' when the expression is an NTP codec call."""
    name = call_func_name(node)
    if name in NTP_WIRE_FUNCS:
        return "wire"
    if name in NTP_SECONDS_FUNCS:
        return "seconds"
    return None


def _numeric_desc(node: ast.AST) -> Optional[str]:
    """How a non-wire operand presents numerically, for the message."""
    unit = expr_unit(node)
    if unit is not None:
        return f"a float declared '{unit}'"
    if is_number_constant(node):
        return "a numeric literal"
    if _ntp_kind(node) == "seconds":
        return "float seconds from an NTP decode helper"
    return None


@register
class NtpFixedPointRule(Rule):
    """Flag mixing NTP wire-format bytes with float quantities."""

    rule_id = "UNIT003"
    summary = (
        "no comparing/combining NTP fixed-point wire bytes "
        "(encode_timestamp/encode_short) with floats; decode first"
    )

    def _check_pair(self, node: ast.AST, left: ast.AST, right: ast.AST) -> None:
        for wire, other in ((left, right), (right, left)):
            if _ntp_kind(wire) != "wire":
                continue
            desc = _numeric_desc(other)
            if desc is not None:
                self.report(
                    node,
                    "NTP wire-format fixed-point bytes mixed with "
                    f"{desc}; decode to seconds before comparing",
                )
                return
        # seconds-returning decode helpers vs a non-seconds suffix.
        for helper, other in ((left, right), (right, left)):
            if _ntp_kind(helper) != "seconds":
                continue
            unit = expr_unit(other)
            if unit is not None and unit != "s":
                self.report(
                    node,
                    "NTP decode helpers return float *seconds* but the "
                    f"other operand is declared '{unit}'",
                )
                return

    def visit_Compare(self, node: ast.Compare) -> None:
        """Flag comparisons that mix wire bytes or decode output badly."""
        operands = [node.left] + list(node.comparators)
        for left, right in zip(operands, operands[1:]):
            self._check_pair(node, left, right)
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        """Flag +/- that mixes wire bytes or decode output badly."""
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_pair(node, node.left, node.right)
        self.generic_visit(node)

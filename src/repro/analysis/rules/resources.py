"""RES001-003: resource typestate over the per-function CFG.

The codebase has three resource-shaped protocols whose "release" half
is easy to drop on one branch and impossible for a per-statement rule
to check:

* **Span handles** (RES001) — ``tracer.begin(...)`` /
  ``<x>.spans.begin(...)`` returns a handle that must be ``.end()``-ed;
  a span left open produces *no* trace record, so the leak silently
  erases telemetry for exactly the path that went wrong.
* **Ring-buffered telemetry** (RES002) — a locally constructed
  ``Telemetry``/``RingBufferSink`` stages records in memory; a path
  that leaves the function without ``.flush()`` (or ``.close()``)
  drops the staged tail of the run.
* **File handles** (RES003, library code only) — ``open()`` outside a
  ``with`` leaks the descriptor on any early return or error branch.

All three share one forward may-analysis: an *acquisition* assigned to
a local enters the ``open`` state; a release-method call, an ownership
transfer (the handle is passed to a call, returned, aliased, stored
into an attribute/container, or captured by a nested function), or a
rebinding kills it.  A handle still open on any edge into the function
exit is reported at its acquisition site.  Branch guards on the handle
(``if span is not None: span.end()``) are honoured via the CFG's edge
guards — the conditional-acquisition idiom used throughout ``src/``
does not false-positive, which is what makes these rules gateable.

Acquisitions managed by a ``with`` block are never tracked (the
context manager releases them), and functions whose CFG is unsupported
(generators, async defs) are skipped gracefully.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, Rule, SourceModule
from repro.analysis.flow.cfg import (
    CFG,
    CaseBind,
    Edge,
    ExceptBind,
    ForBind,
    WithEnter,
    WithExit,
    function_cfgs,
)
from repro.analysis.flow.dataflow import (
    Analysis,
    each_item_state,
    exit_edge_states,
    solve_forward,
)
from repro.analysis.rules import register
from repro.analysis.rules.base import ImportMap

#: Attribute chains (resolved via ImportMap) that construct a staged
#: telemetry sink (RES002).
_RING_CONSTRUCTORS = frozenset({
    "repro.obs.ringbuf.RingBufferSink",
    "repro.obs.telemetry.Telemetry",
})
_RING_NAMES = frozenset({"RingBufferSink", "Telemetry"})

#: kind -> (release method names, human noun, fix advice)
_KINDS = {
    "span": (
        frozenset({"end"}),
        "span handle",
        "call .end() on every path or use 'with'",
    ),
    "ring": (
        frozenset({"flush", "close"}),
        "ring-buffered telemetry",
        "flush() it on every exit path or hand it off",
    ),
    "file": (
        frozenset({"close"}),
        "file handle",
        "use 'with open(...)' or close() it on every path",
    ),
}

_RULE_FOR_KIND = {"span": "RES001", "ring": "RES002", "file": "RES003"}

#: Receivers whose ``.begin``/``.span`` call yields a span handle.
_SPAN_RECEIVERS = frozenset({"spans", "tracer", "_tracer"})

_CACHE_ATTR = "_resource_findings_cache"


def _attr_parts(node: ast.AST) -> Optional[List[str]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


class _Acq(Tuple[str, int, int, str]):
    """(kind, lineno, col, display) — immutable, joinable by min-site."""

    __slots__ = ()


def _acq(kind: str, node: ast.AST, display: str) -> _Acq:
    return _Acq((kind, node.lineno, node.col_offset + 1, display))


class _ResourceAnalysis(Analysis):
    """Forward may-open analysis; state: var name -> acquisition."""

    def __init__(self, module: SourceModule, imports: ImportMap) -> None:
        self.module = module
        self.imports = imports
        self.in_library = module.module[:1] == ("repro",)

    # -- lattice ------------------------------------------------------------

    def initial(self) -> Dict[str, _Acq]:
        return {}

    def join(self, a: Dict[str, _Acq], b: Dict[str, _Acq]) -> Dict[str, _Acq]:
        merged = dict(a)
        for var, acq in b.items():
            other = merged.get(var)
            # Same handle acquired on both branches: anchor the report
            # at the earliest acquisition site.
            merged[var] = acq if other is None else min(other, acq)
        return merged

    # -- acquisition matchers ------------------------------------------------

    def acquisition_kind(self, node: ast.AST) -> Optional[str]:
        """The resource kind a call expression acquires, if any."""
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "open" and self.in_library:
                # A local/imported redefinition of open() is not the
                # builtin; ImportMap resolves those, builtins it won't.
                if self.imports.resolve(func) in (None, "open"):
                    return "file"
            if func.id in _RING_NAMES:
                return "ring"
            return None
        if isinstance(func, ast.Attribute):
            dotted = self.imports.resolve(func)
            if dotted in _RING_CONSTRUCTORS:
                return "ring"
            if dotted is not None and dotted.split(".")[-1] in _RING_NAMES:
                return "ring"
            if func.attr in ("begin", "span"):
                parts = _attr_parts(func)
                if parts is not None and len(parts) >= 2 and (
                    parts[-2] in _SPAN_RECEIVERS
                ):
                    return "span"
        return None

    def _acquired_kinds(self, value: ast.AST) -> Optional[Tuple[str, ast.AST]]:
        """Acquisition reachable at the top of an RHS expression.

        Sees through the conditional idioms used for optional telemetry
        (``begin(...) if t else None``, ``t and t.begin(...)``).
        """
        kind = self.acquisition_kind(value)
        if kind is not None:
            return kind, value
        branches: List[ast.AST] = []
        if isinstance(value, ast.IfExp):
            branches = [value.body, value.orelse]
        elif isinstance(value, ast.BoolOp):
            branches = list(value.values)
        for branch in branches:
            found = self._acquired_kinds(branch)
            if found is not None:
                return found
        return None

    # -- transfer ------------------------------------------------------------

    def transfer(self, item: object, state: Dict[str, _Acq]) -> Dict[str, _Acq]:
        if not isinstance(item, ast.stmt) and not isinstance(
            item, (WithEnter, WithExit, ForBind, ExceptBind, CaseBind)
        ):
            return state
        if isinstance(item, WithExit):
            return state
        new = dict(state)
        if isinstance(item, WithEnter):
            for withitem in item.node.items:
                # Tracked handles fed to a manager escape into it.
                for name in _loads_in(withitem.context_expr, set(new)):
                    new.pop(name, None)
                if withitem.optional_vars is not None:
                    for name in _bound_names(withitem.optional_vars):
                        new.pop(name, None)
            return new
        if isinstance(item, ForBind):
            for name in _bound_names(item.node.target):
                new.pop(name, None)
            return new
        if isinstance(item, ExceptBind):
            if item.node.name:
                new.pop(item.node.name, None)
            return new
        if isinstance(item, CaseBind):
            for name in _pattern_names(item.node.pattern):
                new.pop(name, None)
            return new

        assert isinstance(item, ast.stmt)
        # 1. releases: receiver of a kind-matching release method.
        for name in _released_names(item, new):
            new.pop(name, None)
        # 2. ownership transfers kill tracking (the new owner closes).
        for name in _escaped_names(item, new):
            new.pop(name, None)
        # 3. rebinding / deletion.
        if isinstance(item, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                item.targets if isinstance(item, ast.Assign) else [item.target]
            )
            for target in targets:
                for name in _bound_names(target):
                    new.pop(name, None)
        elif isinstance(item, ast.Delete):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    new.pop(target.id, None)
        # 4. acquisitions bound to a plain local name.
        value = None
        if isinstance(item, ast.Assign) and len(item.targets) == 1:
            target, value = item.targets[0], item.value
        elif isinstance(item, ast.AnnAssign) and item.value is not None:
            target, value = item.target, item.value
        if value is not None and isinstance(target, ast.Name):
            found = self._acquired_kinds(value)
            if found is not None:
                kind, call = found
                new[target.id] = _acq(kind, call, target.id)
        return new

    def transfer_edge(self, edge: Edge, state: Dict[str, _Acq]) -> Dict[str, _Acq]:
        guard = edge.guard
        if guard is None or guard.truthy or guard.name not in state:
            return state
        # The handle is known falsy (None) along this edge, so it was
        # never acquired on the paths that reach here.
        new = dict(state)
        new.pop(guard.name, None)
        return new


def _released_names(stmt: ast.stmt, state: Dict[str, _Acq]) -> Set[str]:
    released: Set[str] = set()
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
        ):
            name = node.func.value.id
            acq = state.get(name)
            if acq is not None and node.func.attr in _KINDS[acq[0]][0]:
                released.add(name)
    return released


def _loads_in(node: ast.AST, tracked: Set[str]) -> Set[str]:
    found: Set[str] = set()
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Name)
            and isinstance(child.ctx, ast.Load)
            and child.id in tracked
        ):
            found.add(child.id)
    return found


def _escaped_names(stmt: ast.stmt, state: Dict[str, _Acq]) -> Set[str]:
    """Tracked names whose ownership leaves the function via ``stmt``.

    Escaping positions: call arguments, return values, raise operands,
    right-hand sides of assignments (aliasing or storage), and the body
    of a nested function/class definition.  Receiver positions
    (``v.end()``) are *not* escapes — releases handle those.
    """
    tracked = set(state)
    if not tracked:
        return set()
    escaped: Set[str] = set()
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        for inner in stmt.body:
            escaped |= _loads_in(inner, tracked)
        return escaped
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            for arg in node.args:
                escaped |= _loads_in(arg, tracked)
            for kw in node.keywords:
                escaped |= _loads_in(kw.value, tracked)
        elif isinstance(node, ast.Return) and node.value is not None:
            escaped |= _loads_in(node.value, tracked)
        elif isinstance(node, ast.Raise):
            for part in (node.exc, node.cause):
                if part is not None:
                    escaped |= _loads_in(part, tracked)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            if node.value is not None:
                escaped |= _loads_in(node.value, tracked)
            # Subscript/attribute targets evaluate tracked names too
            # (d[span] = x); plain Name targets are rebinds, not loads.
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if not isinstance(target, ast.Name):
                    escaped |= _loads_in(target, tracked)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.Lambda)):
            body = node.body if isinstance(node.body, list) else [node.body]
            for inner in body:
                escaped |= _loads_in(inner, tracked)
    return escaped


def _bound_names(target: ast.AST) -> Iterable[str]:
    for node in ast.walk(target):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            yield node.id
        elif isinstance(node, ast.Starred):
            continue


def _pattern_names(pattern: ast.AST) -> Iterable[str]:
    for node in ast.walk(pattern):
        if isinstance(node, ast.MatchAs) and node.name:
            yield node.name
        elif isinstance(node, ast.MatchStar) and node.name:
            yield node.name
        elif isinstance(node, ast.MatchMapping) and node.rest:
            yield node.rest


def _function_findings(
    module: SourceModule,
    analysis: _ResourceAnalysis,
    qualname: str,
    cfg: CFG,
) -> List[Finding]:
    state_in = solve_forward(cfg, analysis)
    findings: List[Finding] = []
    seen: Set[Tuple[str, _Acq]] = set()

    # Fire-and-forget acquisitions: the handle is dropped on the spot.
    for _, item, state in each_item_state(cfg, analysis, state_in):
        if isinstance(item, ast.Expr):
            kind = analysis.acquisition_kind(item.value)
            if kind is None:
                continue
            if kind == "file" and not analysis.in_library:
                continue
            releases, noun, advice = _KINDS[kind]
            findings.append(Finding(
                rule=_RULE_FOR_KIND[kind],
                path=module.path,
                line=item.value.lineno,
                col=item.value.col_offset + 1,
                message=(
                    f"{noun} acquired in '{qualname}' is dropped without "
                    f"{'/'.join(sorted(releases))}(); {advice}"
                ),
            ))

    # Handles still open on an edge into the exit.
    leaks: Dict[Tuple[str, _Acq], Tuple[int, str]] = {}
    for edge, state in exit_edge_states(cfg, analysis, state_in):
        for var, acq in state.items():
            key = (var, acq)
            exit_line = _edge_line(cfg, edge)
            prev = leaks.get(key)
            if prev is None or (exit_line, edge.kind) < prev:
                leaks[key] = (exit_line, edge.kind)
    for (var, acq), (exit_line, exit_kind) in sorted(
        leaks.items(), key=lambda kv: (kv[0][1], kv[0][0])
    ):
        if (var, acq) in seen:
            continue
        seen.add((var, acq))
        kind, lineno, col, display = acq
        releases, noun, advice = _KINDS[kind]
        where = f"line {exit_line}" if exit_line else "the end of the function"
        findings.append(Finding(
            rule=_RULE_FOR_KIND[kind],
            path=module.path,
            line=lineno,
            col=col,
            message=(
                f"{noun} '{display}' opened in '{qualname}' is not "
                f"{'/'.join(sorted(releases))}()-ed on every path "
                f"(leaks on the {exit_kind} path via {where}); {advice}"
            ),
        ))
    return findings


def _edge_line(cfg: CFG, edge: Edge) -> int:
    block = cfg.blocks[edge.src]
    for item in reversed(block.items):
        node = getattr(item, "node", item)
        lineno = getattr(node, "lineno", None)
        if lineno is not None:
            return int(lineno)
    return 0


def resource_findings(module: SourceModule) -> List[Finding]:
    """All RES findings for one module (computed once, shared by rules)."""
    cached = getattr(module, _CACHE_ATTR, None)
    if cached is not None:
        return cached
    imports = ImportMap(module.tree)
    analysis = _ResourceAnalysis(module, imports)
    findings: List[Finding] = []
    for node, qualname, cfg in function_cfgs(module.tree):
        if cfg is None:
            continue  # generator/async: skipped gracefully
        findings.extend(_function_findings(module, analysis, qualname, cfg))
    findings.sort(key=lambda f: (f.line, f.col, f.rule, f.message))
    setattr(module, _CACHE_ATTR, findings)
    return findings


class _ResourceRule(Rule):
    """Base: filter the shared resource analysis down to one rule id."""

    def run(self) -> List[Finding]:
        return [
            f for f in resource_findings(self.module)
            if f.rule == self.rule_id
        ]


@register
class SpanLeakRule(_ResourceRule):
    rule_id = "RES001"
    summary = (
        "a span handle from tracer/spans .begin() must be .end()-ed on "
        "every path out of the function (or managed by 'with'); an "
        "unclosed span silently drops its trace record"
    )
    rationale = (
        "A span only emits its trace record at .end(); leaking it on an "
        "early return or raise erases the trace for exactly the path "
        "that went wrong. The check is path-sensitive: conditional "
        "acquisition guarded by 'if span is not None' is fine, and a "
        "handle passed onward (stored, returned, captured) transfers "
        "ownership instead of leaking."
    )
    example = (
        "span = tracer.begin('work')\n"
        "if cond:\n"
        "    return early   # span never ends on this path\n"
        "span.end()"
    )
    fix_hint = (
        "Use 'with tracer.span(...):', or end the span in a finally/"
        "catch-all handler so every exit path closes it."
    )


@register
class RingFlushRule(_ResourceRule):
    rule_id = "RES002"
    summary = (
        "a locally constructed Telemetry/RingBufferSink must be "
        "flush()-ed (or handed off) on every exit path; staged records "
        "are lost otherwise"
    )
    rationale = (
        "Ring-buffered telemetry stages records in memory and only "
        "writes them out on flush(); a function that constructs a "
        "local sink and leaves without flushing drops the staged tail "
        "of the run — usually the most interesting part."
    )
    example = (
        "tel = Telemetry()\n"
        "tel.emit('tick', {})\n"
        "if cond:\n"
        "    return        # staged records dropped\n"
        "tel.flush()"
    )
    fix_hint = (
        "flush() (or close()) in a finally, or hand the sink to an "
        "owner that manages its lifecycle."
    )


@register
class FileHandleRule(_ResourceRule):
    rule_id = "RES003"
    summary = (
        "library code must open files via 'with' (or close() the handle "
        "on every path); bare open() leaks the descriptor on early "
        "returns and error branches"
    )
    rationale = (
        "A descriptor leaked per call adds up fast in a long-running "
        "service (ROADMAP #5) and under the process fan-out; CPython's "
        "refcounting hides the bug locally and ships it to production. "
        "Applies to repro.* library modules only."
    )
    example = (
        "f = open(path)\n"
        "data = f.read()   # an exception here leaks the descriptor\n"
        "f.close()"
    )
    fix_hint = "with open(path) as f: — or close() in a finally."

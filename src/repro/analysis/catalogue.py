"""Catalogue entries for ``lint --explain`` — rationale/example/fix.

Rule classes may carry :attr:`~repro.analysis.engine.Rule.rationale`,
:attr:`~repro.analysis.engine.Rule.example`, and
:attr:`~repro.analysis.engine.Rule.fix_hint` directly (the newer rule
families do); for the rest, the entries live here so the original rule
modules stay untouched.  ``lint --explain`` reads the class field
first and falls back to this table, so every registered rule has a
complete entry either way.

Keep entries short: one-paragraph rationale, a minimal violating
snippet, and one actionable fix line.
"""

from __future__ import annotations

from typing import Dict

#: rule id -> {"rationale": ..., "example": ..., "fix_hint": ...}
ENTRIES: Dict[str, Dict[str, str]] = {
    "COR001": {
        "rationale": "Float time quantities accumulate rounding error; "
                     "exact equality is true only by accident and flips "
                     "with any reordering of arithmetic.",
        "example": "if t_s == deadline_s: fire()",
        "fix_hint": "Compare against a tolerance: "
                    "abs(t_s - deadline_s) < 1e-9.",
    },
    "COR002": {
        "rationale": "A mutable default is created once at def time and "
                     "shared by every call, so state leaks between "
                     "experiments and runs stop being independent.",
        "example": "def run(samples=[]): samples.append(...)",
        "fix_hint": "Default to None and create the container inside "
                    "the function.",
    },
    "COR003": {
        "rationale": "Without __all__ the public surface of a package is "
                     "whatever happens to be imported, and refactors "
                     "silently change the API.",
        "example": "# __init__.py\nfrom .clock import Clock  # no __all__",
        "fix_hint": "Add __all__ listing every intentionally public name.",
    },
    "COR004": {
        "rationale": "Unused imports hide real dependencies, slow import "
                     "time, and mask typos (the intended name differs "
                     "from the imported one).",
        "example": "import os  # never referenced",
        "fix_hint": "Delete the import (lint --fix does it mechanically).",
    },
    "COR005": {
        "rationale": "A public function nothing calls or tests is dead "
                     "weight that still must be kept working; either it "
                     "has users (add a test) or it does not (remove it).",
        "example": "def helper(): ...  # no caller, no test, public name",
        "fix_hint": "Remove it, underscore-prefix it, or add the missing "
                    "caller/test.",
    },
    "DET001": {
        "rationale": "Simulation output must be a pure function of the "
                     "seed; a wall-clock read makes runs unreproducible "
                     "and breaks byte-identical telemetry.",
        "example": "t0 = time.time()  # inside repro.simcore",
        "fix_hint": "Use Simulator.now (simulated time) or take the "
                    "timestamp as a parameter.",
    },
    "DET002": {
        "rationale": "The global random module is one shared stream: any "
                     "new draw site reorders every later draw and "
                     "changes results for unrelated components.",
        "example": "jitter = random.gauss(0, 1)",
        "fix_hint": "Draw from a named RngRegistry stream: "
                    "rng = registry.stream('wireless'); rng.gauss(0, 1).",
    },
    "DET003": {
        "rationale": "numpy's global RNG and unseeded default_rng() have "
                     "the same reproducibility failure as DET002, just "
                     "in numpy code.",
        "example": "noise = numpy.random.normal(size=n)",
        "fix_hint": "Take a Generator from RngRegistry and call its "
                    "methods.",
    },
    "DET004": {
        "rationale": "A sim-package function can launder a wall-clock or "
                     "global-RNG call through an innocent-looking "
                     "helper; the transitive closure is what matters.",
        "example": "def step(self): util.stamp()  # stamp() calls time.time()",
        "fix_hint": "Follow the reported witness chain and replace the "
                    "effectful call at its source.",
    },
    "OBS001": {
        "rationale": "print() output is unstructured, unexportable, and "
                     "invisible to the telemetry pipeline; findings "
                     "based on it cannot be asserted on or graphed.",
        "example": "print(f'offset={offset_ms}')",
        "fix_hint": "Emit a metric or trace record via repro.obs "
                    "(telemetry.emit / metrics.counter).",
    },
    "OBS002": {
        "rationale": "Unregistered span kinds and off-convention metric "
                     "names fragment dashboards: the same quantity ends "
                     "up under several names.",
        "example": "tracer.begin('my.new.kind')  # not in taxonomy",
        "fix_hint": "Register the kind in repro.obs.taxonomy; name "
                    "counters *_total and put units on gauges.",
    },
    "OBS003": {
        "rationale": "Direct TraceLog appends and per-event registry "
                     "lookups in the hot closure cost a dict resolve "
                     "per event — the ring-buffer sink batches them.",
        "example": "trace.emit(t, 'mntp', 'tick')  # in the hot loop",
        "fix_hint": "Route through telemetry.emit / telemetry.count.",
    },
    "OBS004": {
        "rationale": "An inline SLO threshold is invisible to the "
                     "guarantee machinery and drifts from the spec "
                     "the matrix runner actually enforces.",
        "example": "if p99_ms > 25: fail()",
        "fix_hint": "Read the threshold from a unit-suffixed SloSpec "
                    "field.",
    },
    "PERF001": {
        "rationale": "A container constructed per iteration of the sim "
                     "inner loop is allocator pressure multiplied by "
                     "millions of events.",
        "example": "for e in events: push({'t': e.t})",
        "fix_hint": "Hoist the container out of the loop or restructure "
                    "to reuse one.",
    },
    "PERF002": {
        "rationale": "String formatting per iteration burns cycles even "
                     "when the string is never shown; hot loops should "
                     "format lazily or not at all.",
        "example": "for e in events: log(f'event {e.id}')",
        "fix_hint": "Move formatting behind a level check or out of the "
                    "loop.",
    },
    "PERF003": {
        "rationale": "Each attribute hop is a dict lookup; repeating a "
                     "3-deep chain inside a loop pays that cost every "
                     "iteration for the same object.",
        "example": "for _ in q: self.link.channel.model.step()",
        "fix_hint": "Bind the target once before the loop: "
                    "step = self.link.channel.model.step.",
    },
    "PERF004": {
        "rationale": "A loop whose whole body is one append is the "
                     "slowest way to build a list in CPython.",
        "example": "for x in xs: out.append(f(x))",
        "fix_hint": "Use a comprehension (or a numpy batch op).",
    },
    "CONC001": {
        "rationale": "Module-level mutable state mutated from the hot "
                     "closure is shared by every shard in one process "
                     "and breaks the ROADMAP #1 process fan-out.",
        "example": "_SEEN = {}\ndef on_event(e): _SEEN[e.id] = e",
        "fix_hint": "Move the container onto the per-shard instance.",
    },
    "CONC002": {
        "rationale": "Class-level mutables and runtime class-attribute "
                     "writes are shared across all instances — shard "
                     "isolation silently disappears.",
        "example": "class Shard:\n    cache = {}\n    def f(self): "
                   "self.cache[k] = v",
        "fix_hint": "Initialise the container in __init__ so each "
                    "instance owns one.",
    },
    "CONC003": {
        "rationale": "functools caches and module-level counters are "
                     "process-global: they leak results across runs and "
                     "across shards sharing a worker.",
        "example": "@lru_cache\ndef lookup(sid): ...  # hot closure",
        "fix_hint": "Cache on the instance, or key the cache by run/shard.",
    },
    "ROB001": {
        "rationale": "A bare except swallows KeyboardInterrupt and "
                     "fault-injection signals alike; a non-positive "
                     "timeout turns a bounded wait into a spin or a "
                     "hang.",
        "example": "try: step()\nexcept: pass",
        "fix_hint": "Name the exceptions you mean to handle; make "
                    "timeouts positive.",
    },
    "ROB002": {
        "rationale": "Guarantee thresholds hard-coded in scenario code "
                     "bypass the SloSpec machinery, so the matrix "
                     "runner and the scenario disagree about pass/fail.",
        "example": "assert p99_offset_ms < 25  # in a scenario module",
        "fix_hint": "Declare the threshold in the spec's guarantees "
                    "block and read it from there.",
    },
    "UNIT001": {
        "rationale": "Adding seconds to milliseconds is the classic "
                     "silent 1000x error; the suffix convention exists "
                     "so the linter can catch it.",
        "example": "total = rtt_ms + offset_s",
        "fix_hint": "Convert explicitly first: rtt_ms + offset_s * 1e3.",
    },
    "UNIT002": {
        "rationale": "A threshold compared in the wrong unit is off by "
                     "1000x and usually makes the check always-true or "
                     "always-false.",
        "example": "if delay_us > timeout_ms: drop()",
        "fix_hint": "Convert one side: delay_us > timeout_ms * 1e3.",
    },
    "UNIT003": {
        "rationale": "encode_timestamp/encode_short return fixed-point "
                     "wire bytes, not numbers; comparing them with "
                     "floats is meaningless.",
        "example": "if encode_short(d) > 0.5: ...",
        "fix_hint": "Decode to seconds first (decode_short / "
                    "decode_timestamp).",
    },
    "UNIT004": {
        "rationale": "Units must survive call boundaries: passing "
                     "seconds into a _ms parameter is the same 1000x "
                     "bug as UNIT001, one hop removed.",
        "example": "backoff(wait_ms=interval_s)",
        "fix_hint": "Convert at the call site to the parameter's "
                    "declared unit.",
    },
    "UNIT005": {
        "rationale": "A call whose return unit is inferred as seconds "
                     "assigned to an _ms name poisons every later use "
                     "of that name.",
        "example": "elapsed_ms = stopwatch_seconds()",
        "fix_hint": "Rename the target or convert the value at the "
                    "assignment.",
    },
}

"""``python -m repro.analysis`` — standalone lint entry point."""

import sys

from repro.analysis.cli import main

if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Hot-path identification: the transitive closure of the sim inner loop.

The simulator's cost concentrates in a small set of per-event code:
the event-dispatch loop itself, link/wireless sampling, and the per
exchange MNTP/SNTP handlers.  :data:`HOT_ROOTS` names those entry
points; :func:`hot_closure` walks the PR 5 call graph from them (plus
any function annotated ``# repro: hot``) and returns every reachable
function with a witness chain back to its root.  The PERF rules only
report inside this closure — a comprehension in a report formatter is
fine; the same comprehension in the wireless sampler is not.

The static graph cannot follow the event queue's dynamic dispatch
(``event.callback()``), which is why the roots enumerate the handlers
scheduled onto the queue rather than just ``Simulator.run_until``.
New hot entry points are added with a ``# repro: hot`` comment on the
``def`` line, not by editing this list.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.engine import Finding
from repro.analysis.flow.project import Project
from repro.analysis.flow.summary import MODULE_BODY
from repro.analysis.rules.determinism import SIMULATION_PACKAGES

#: Statically-known entry points of the simulator inner loop.
HOT_ROOTS: Tuple[str, ...] = (
    "repro.simcore.simulator.Simulator.run_until",
    "repro.simcore.simulator.Simulator.run_to_completion",
    "repro.simcore.simulator.SimProcess._advance",
    "repro.wireless.channel.WirelessChannel._advance",
    "repro.wireless.channel.WirelessChannel._step_once",
    "repro.net.link.Link.send",
    "repro.ntp.sntp_client.SntpClient.query",
    "repro.ntp.sntp_client.SntpClient.on_datagram",
    "repro.ntp.server.NtpServer.on_datagram",
    "repro.core.protocol.Mntp._warmup_round",
    "repro.core.protocol.Mntp._warmup_query",
    "repro.core.protocol.Mntp._regular_round",
    "repro.core.protocol.Mntp._regular_query",
    "repro.core.protocol.Mntp._handle_offset",
)

#: Packages that will live inside simulator shards once the event loop
#: splits across processes (ROADMAP #1); the CONC rules police shared
#: state here.  A superset of the determinism scope: the net/faults/
#: testbed layers run inside the loop even though DET rules exempt them.
SHARD_PACKAGES = frozenset(SIMULATION_PACKAGES) | {
    "net", "faults", "testbed",
}

#: Cap on witness-chain hops shown in messages (fingerprints include
#: the message, so chains must stay short and stable).
_CHAIN_SHOWN = 4


def hot_closure(project: Project) -> Dict[str, List[str]]:
    """Full name -> witness chain (root first) for every hot function.

    Roots are the :data:`HOT_ROOTS` present in the project plus every
    ``# repro: hot`` annotated function.  Traversal is breadth-first in
    recorded call order, so the chain for each function is a shortest
    one and deterministic across runs.  Module bodies never enter the
    closure (import-time cost is not per-event cost).  The result is
    memoized on the project instance.
    """
    cached = getattr(project, "_hot_closure", None)
    if cached is not None:
        return cached
    roots = [full for full in HOT_ROOTS if full in project.functions]
    roots.extend(
        full
        for full, entry in sorted(project.functions.items())
        if entry.info.hot_annotated and full not in roots
    )
    closure: Dict[str, List[str]] = {}
    queue: List[str] = []
    for root in roots:
        if root not in closure:
            closure[root] = [root]
            queue.append(root)
    index = 0
    while index < len(queue):
        current = queue[index]
        index += 1
        entry = project.functions[current]
        module = entry.module.dotted()
        for call in entry.info.calls:
            callee = project.resolve(call.ref, module)
            if callee is None or callee.info.qualname == MODULE_BODY:
                continue
            # Synthetic constructor entries (dataclasses without an
            # __init__) are not project functions: no body, no sites.
            if callee.full in closure or callee.full not in project.functions:
                continue
            closure[callee.full] = closure[current] + [callee.full]
            queue.append(callee.full)
    project._hot_closure = closure  # type: ignore[attr-defined]
    return closure


def chain_label(chain: List[str]) -> str:
    """Stable human text for a witness chain (used inside messages)."""
    if len(chain) == 1:
        return f"hot root '{chain[0]}'"
    shown = chain
    if len(chain) > _CHAIN_SHOWN:
        shown = chain[: _CHAIN_SHOWN - 1] + ["...", chain[-1]]
    return "hot via " + " -> ".join(shown)


# ---------------------------------------------------------------------------
# ranked hot-path report


def render_hot_report(
    project: Project, profile: Optional[Any] = None, top: int = 15
) -> str:
    """The ranked hot-closure table for ``lint --hot-report/--profile``.

    Without a profile, rows order by closure depth (roots first) then
    name — the static picture.  With one (see
    :mod:`repro.analysis.profile`), rows order by measured cumulative
    time, so the report reflects where the smoke scenario actually
    spends its cycles.
    """
    closure = hot_closure(project)
    rows = []
    for full, chain in closure.items():
        entry = project.functions[full]
        ncalls, cum_s = 0, 0.0
        if profile is not None:
            sample = profile.lookup(entry.module.path, entry.info.name)
            if sample is not None:
                ncalls = sample["ncalls"]
                cum_s = sample["cumtime_s"]
        rows.append((full, chain, ncalls, cum_s))
    if profile is not None:
        rows.sort(key=lambda r: (-r[3], -r[2], r[0]))
    else:
        rows.sort(key=lambda r: (len(r[1]), r[0]))
    lines = [
        f"hot closure: {len(closure)} function(s) from "
        f"{sum(1 for c in closure.values() if len(c) == 1)} root(s)"
        + ("" if profile is None else f", ranked by {profile.describe()}")
    ]
    for full, chain, ncalls, cum_s in rows[:top]:
        if profile is not None:
            lines.append(
                f"  {cum_s:8.3f}s {ncalls:>9}x  {full}"
            )
        else:
            lines.append(f"  depth {len(chain):>2}  {full}")
    if len(rows) > top:
        lines.append(f"  ... {len(rows) - top} more (use --hot-top)")
    return "\n".join(lines)


def rank_findings_by_profile(
    findings: List[Finding], project: Optional[Project], profile: Any
) -> List[Finding]:
    """Order findings by the measured cost of their enclosing function.

    Findings outside the profile (or outside any known function) keep
    their relative position after the measured ones, still sorted by
    location, so the output stays deterministic.
    """
    if project is None:
        return list(findings)

    def weight(f: Finding) -> Tuple[float, int, str, int, int, str]:
        cum_s, ncalls = 0.0, 0
        entry = _enclosing(project, f.path, f.line)
        if entry is not None:
            sample = profile.lookup(entry.module.path, entry.info.name)
            if sample is not None:
                ncalls = sample["ncalls"]
                cum_s = sample["cumtime_s"]
        return (-cum_s, -ncalls, f.path, f.line, f.col, f.rule)

    return sorted(findings, key=weight)


def _enclosing(project: Project, path: str, line: int):
    best = None
    for full, entry in project.functions.items():
        if entry.module.path != path or entry.info.qualname == MODULE_BODY:
            continue
        if entry.info.lineno <= line:
            if best is None or entry.info.lineno > best.info.lineno:
                best = entry
    return best

"""Per-module flow summaries: the unit of whole-program analysis.

Interprocedural analysis never holds two ASTs at once.  Phase one
reduces every module to a :class:`ModuleSummary` — its functions with
parameter/return unit declarations, the calls they make (with the unit
each argument carries), the determinism-relevant *effects* they perform
directly, the names the module references, and its exports.  Phase two
(:mod:`repro.analysis.flow.project`) stitches the summaries into a call
graph and propagates units and effects across it.

Summaries are plain-data and round-trip through JSON (``to_dict`` /
``from_dict``), which is what makes the incremental lint cache work: a
warm run re-reads bytes to hash them but re-parses nothing.

Call targets are recorded as *resolution keys*, resolved lazily by the
project pass:

* ``d:pkg.mod.name`` — import-resolved dotted path (alias-aware, via
  the same :class:`~repro.analysis.rules.base.ImportMap` machinery the
  per-file rules use),
* ``l:name`` — a bare name in the defining module,
* ``s:Class.name`` — a ``self.``/``cls.`` method call,
* ``a:name`` — an attribute call on an object of unknown type (the
  project pass resolves it only when the name is project-unique).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.engine import SourceModule
from repro.analysis.rules.base import ImportMap, suffix_unit
from repro.analysis.rules.determinism import (
    NUMPY_GLOBAL_RNG_CALLS,
    RNG_HOME,
    WALL_CLOCK_CALLS,
)

#: Pseudo-function holding module-level (import-time) calls and effects.
MODULE_BODY = "<module>"

#: Effect kind -> the per-file rule that polices the direct call, so a
#: targeted noqa on the direct line also silences transitive reports.
EFFECT_RULES = {
    "wall-clock": "DET001",
    "stdlib-random": "DET002",
    "numpy-global-rng": "DET003",
}


@dataclass
class ArgUnit:
    """One call argument that might carry a unit."""

    position: Optional[int]        # positional index (callee-side), or None
    keyword: Optional[str]         # keyword name, or None
    unit: Optional[str]            # unit declared by the argument's name suffix
    call_ref: Optional[str]        # resolution key when the argument is a call
    display: str                   # short source text for messages

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (cache record)."""
        return {
            "position": self.position, "keyword": self.keyword,
            "unit": self.unit, "call_ref": self.call_ref,
            "display": self.display,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ArgUnit":
        return cls(
            position=data["position"], keyword=data["keyword"],
            unit=data["unit"], call_ref=data["call_ref"],
            display=data["display"],
        )


@dataclass
class CallSite:
    """One call expression inside a function body."""

    ref: str                       # resolution key (see module docstring)
    lineno: int
    col: int
    args: List[ArgUnit] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (cache record)."""
        return {
            "ref": self.ref, "lineno": self.lineno, "col": self.col,
            "args": [a.to_dict() for a in self.args],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CallSite":
        return cls(
            ref=data["ref"], lineno=data["lineno"], col=data["col"],
            args=[ArgUnit.from_dict(a) for a in data["args"]],
        )


@dataclass
class EffectSite:
    """A direct determinism-relevant call (wall clock / global RNG)."""

    kind: str                      # key into EFFECT_RULES
    dotted: str                    # canonical dotted call, e.g. "time.sleep"
    lineno: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (cache record)."""
        return {
            "kind": self.kind, "dotted": self.dotted,
            "lineno": self.lineno, "col": self.col,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EffectSite":
        return cls(
            kind=data["kind"], dotted=data["dotted"],
            lineno=data["lineno"], col=data["col"],
        )


@dataclass
class AssignFromCall:
    """A unit-suffixed name assigned directly from a call result."""

    target: str                    # display name ("offset_s", "self.delay_ms")
    unit: str                      # unit the target's suffix declares
    ref: str                       # resolution key of the called function
    lineno: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (cache record)."""
        return {
            "target": self.target, "unit": self.unit, "ref": self.ref,
            "lineno": self.lineno, "col": self.col,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AssignFromCall":
        return cls(
            target=data["target"], unit=data["unit"], ref=data["ref"],
            lineno=data["lineno"], col=data["col"],
        )


@dataclass
class FunctionInfo:
    """Everything the project pass needs to know about one function."""

    qualname: str                  # "poll" or "SntpClient.poll" or MODULE_BODY
    name: str
    lineno: int
    col: int
    pos_params: List[Tuple[str, Optional[str]]] = field(default_factory=list)
    kw_units: Dict[str, Optional[str]] = field(default_factory=dict)
    has_vararg: bool = False
    has_kwarg: bool = False
    name_unit: Optional[str] = None    # unit declared by the function name
    return_descs: List[str] = field(default_factory=list)  # "u:ms"/"c:<ref>"/"?"
    calls: List[CallSite] = field(default_factory=list)
    effects: List[EffectSite] = field(default_factory=list)
    is_public: bool = True
    is_method: bool = False
    decorated: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (cache record)."""
        return {
            "qualname": self.qualname, "name": self.name,
            "lineno": self.lineno, "col": self.col,
            "pos_params": [list(p) for p in self.pos_params],
            "kw_units": dict(self.kw_units),
            "has_vararg": self.has_vararg, "has_kwarg": self.has_kwarg,
            "name_unit": self.name_unit,
            "return_descs": list(self.return_descs),
            "calls": [c.to_dict() for c in self.calls],
            "effects": [e.to_dict() for e in self.effects],
            "is_public": self.is_public, "is_method": self.is_method,
            "decorated": self.decorated,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionInfo":
        return cls(
            qualname=data["qualname"], name=data["name"],
            lineno=data["lineno"], col=data["col"],
            pos_params=[(p[0], p[1]) for p in data["pos_params"]],
            kw_units=dict(data["kw_units"]),
            has_vararg=data["has_vararg"], has_kwarg=data["has_kwarg"],
            name_unit=data["name_unit"],
            return_descs=list(data["return_descs"]),
            calls=[CallSite.from_dict(c) for c in data["calls"]],
            effects=[EffectSite.from_dict(e) for e in data["effects"]],
            is_public=data["is_public"], is_method=data["is_method"],
            decorated=data["decorated"],
        )


@dataclass
class ClassInfo:
    """A class: constructor signature (for UNIT004) and method table."""

    name: str
    lineno: int
    bases: List[str] = field(default_factory=list)   # resolution keys
    ctor_pos_params: List[Tuple[str, Optional[str]]] = field(default_factory=list)
    ctor_kw_units: Dict[str, Optional[str]] = field(default_factory=dict)
    methods: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (cache record)."""
        return {
            "name": self.name, "lineno": self.lineno,
            "bases": list(self.bases),
            "ctor_pos_params": [list(p) for p in self.ctor_pos_params],
            "ctor_kw_units": dict(self.ctor_kw_units),
            "methods": list(self.methods),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassInfo":
        return cls(
            name=data["name"], lineno=data["lineno"],
            bases=list(data["bases"]),
            ctor_pos_params=[(p[0], p[1]) for p in data["ctor_pos_params"]],
            ctor_kw_units=dict(data["ctor_kw_units"]),
            methods=list(data["methods"]),
        )


@dataclass
class ModuleSummary:
    """One module, reduced to what interprocedural rules consume."""

    path: str
    module: Tuple[str, ...]
    functions: List[FunctionInfo] = field(default_factory=list)
    classes: List[ClassInfo] = field(default_factory=list)
    assigns: List[AssignFromCall] = field(default_factory=list)
    referenced: Set[str] = field(default_factory=set)
    exports: List[str] = field(default_factory=list)
    import_bindings: Dict[str, str] = field(default_factory=dict)

    def dotted(self) -> str:
        """The dotted module name (``repro.ntp.wire``)."""
        return ".".join(self.module)

    @property
    def package(self) -> Optional[str]:
        if len(self.module) >= 2 and self.module[0] == "repro":
            return self.module[1]
        return None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (cache record)."""
        return {
            "path": self.path, "module": list(self.module),
            "functions": [f.to_dict() for f in self.functions],
            "classes": [c.to_dict() for c in self.classes],
            "assigns": [a.to_dict() for a in self.assigns],
            "referenced": sorted(self.referenced),
            "exports": list(self.exports),
            "import_bindings": dict(self.import_bindings),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            path=data["path"], module=tuple(data["module"]),
            functions=[FunctionInfo.from_dict(f) for f in data["functions"]],
            classes=[ClassInfo.from_dict(c) for c in data["classes"]],
            assigns=[AssignFromCall.from_dict(a) for a in data["assigns"]],
            referenced=set(data["referenced"]),
            exports=list(data["exports"]),
            import_bindings=dict(data["import_bindings"]),
        )


def summarize(module: SourceModule) -> ModuleSummary:
    """Reduce a parsed module to its flow summary."""
    return _Summarizer(module).run()


# ---------------------------------------------------------------------------
# extraction


def _short(node: ast.AST, limit: int = 40) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failure is cosmetic only
        text = "<expr>"
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _unit_of(node: ast.AST) -> Optional[str]:
    """Unit a value expression declares via a name suffix, if any.

    Unwraps unary minus and subscripts (``delays_ms[i]`` is read as
    milliseconds: the container suffix states the element unit).
    """
    while True:
        if isinstance(node, ast.UnaryOp):
            node = node.operand
        elif isinstance(node, ast.Subscript):
            node = node.value
        else:
            break
    if isinstance(node, ast.Name):
        return suffix_unit(node.id)
    if isinstance(node, ast.Attribute):
        return suffix_unit(node.attr)
    return None


class _Summarizer:
    def __init__(self, module: SourceModule) -> None:
        self.module = module
        self.imports = ImportMap(module.tree)
        self.summary = ModuleSummary(path=module.path, module=module.module)
        self._exempt_rng = module.module == RNG_HOME

    def run(self) -> ModuleSummary:
        tree = self.module.tree
        module_fn = FunctionInfo(
            qualname=MODULE_BODY, name=MODULE_BODY, lineno=1, col=1,
            is_public=False,
        )
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function(stmt, class_name=None, module_fn=module_fn)
            elif isinstance(stmt, ast.ClassDef):
                self._class(stmt, module_fn)
            else:
                self._collect(stmt, module_fn, function=MODULE_BODY,
                              collect_returns=False, class_name=None)
        self.summary.functions.append(module_fn)
        self._references(tree)
        self.summary.exports = _all_exports(tree)
        self.summary.import_bindings = {
            local: dotted
            for local, dotted in self.imports.aliases.items()
            if dotted.startswith("repro.") or dotted == "repro"
        }
        return self.summary

    # -- functions ---------------------------------------------------------

    def _function(
        self,
        node: ast.AST,
        class_name: Optional[str],
        module_fn: FunctionInfo,
    ) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        qualname = f"{class_name}.{node.name}" if class_name else node.name
        info = FunctionInfo(
            qualname=qualname, name=node.name,
            lineno=node.lineno, col=node.col_offset + 1,
            name_unit=suffix_unit(node.name),
            is_public=not node.name.startswith("_"),
            is_method=class_name is not None,
            decorated=bool(node.decorator_list),
        )
        _signature_units(node.args, info, skip_first=class_name is not None)
        for decorator in node.decorator_list:
            # Decorator application runs at import time.
            self._collect(decorator, module_fn, function=MODULE_BODY,
                          collect_returns=False, class_name=class_name)
        for stmt in node.body:
            self._collect(stmt, info, function=qualname,
                          collect_returns=True, class_name=class_name)
        self.summary.functions.append(info)

    def _class(self, node: ast.ClassDef, module_fn: FunctionInfo) -> None:
        cls_info = ClassInfo(name=node.name, lineno=node.lineno)
        for base in node.bases:
            ref = self._ref(base, class_name=None)
            if ref is not None:
                cls_info.bases.append(ref)
        is_dataclass = any(
            self.imports.resolve(d.func if isinstance(d, ast.Call) else d)
            == "dataclasses.dataclass"
            for d in node.decorator_list
        )
        fields: List[Tuple[str, Optional[str]]] = []
        ctor: Optional[ast.FunctionDef] = None
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls_info.methods.append(stmt.name)
                if stmt.name == "__init__" and isinstance(stmt, ast.FunctionDef):
                    ctor = stmt
                self._function(stmt, class_name=node.name, module_fn=module_fn)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if not stmt.target.id.startswith("_"):
                    fields.append(
                        (stmt.target.id, suffix_unit(stmt.target.id))
                    )
                if stmt.value is not None:
                    self._collect(stmt.value, module_fn, function=MODULE_BODY,
                                  collect_returns=False, class_name=node.name)
            else:
                # Class-body statements execute at import time.
                self._collect(stmt, module_fn, function=MODULE_BODY,
                              collect_returns=False, class_name=node.name)
        if ctor is not None:
            pseudo = FunctionInfo(qualname="", name="", lineno=0, col=0)
            _signature_units(ctor.args, pseudo, skip_first=True)
            cls_info.ctor_pos_params = pseudo.pos_params
            cls_info.ctor_kw_units = pseudo.kw_units
        elif is_dataclass:
            cls_info.ctor_pos_params = fields
            cls_info.ctor_kw_units = dict(fields)
        self.summary.classes.append(cls_info)

    # -- bodies ------------------------------------------------------------

    def _collect(
        self,
        node: ast.AST,
        info: FunctionInfo,
        function: str,
        collect_returns: bool,
        class_name: Optional[str],
    ) -> None:
        """Walk a statement/expression, recording calls, effects, returns.

        Nested function bodies are folded into the enclosing function's
        call and effect sets (their execution is attributed to it), but
        their ``return`` statements are not the enclosing function's.
        """
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in node.body:
                self._collect(child, info, function, False, class_name)
            return
        if isinstance(node, ast.Lambda):
            self._collect(node.body, info, function, False, class_name)
            return
        if isinstance(node, ast.Return) and collect_returns:
            if node.value is not None:
                self.summary_return(info, node.value, class_name)
        if isinstance(node, ast.Call):
            self._call(node, info, class_name)
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            self._assign(node, class_name)
        for child in ast.iter_child_nodes(node):
            self._collect(child, info, function, collect_returns, class_name)

    def summary_return(
        self, info: FunctionInfo, value: ast.AST, class_name: Optional[str]
    ) -> None:
        unit = _unit_of(value)
        if unit is not None:
            info.return_descs.append(f"u:{unit}")
            return
        if isinstance(value, ast.Call):
            ref = self._ref(value.func, class_name)
            if ref is not None:
                info.return_descs.append(f"c:{ref}")
                return
        info.return_descs.append("?")

    def _call(
        self, node: ast.Call, info: FunctionInfo, class_name: Optional[str]
    ) -> None:
        self._effect(node, info)
        ref = self._ref(node.func, class_name)
        if ref is None:
            return
        site = CallSite(ref=ref, lineno=node.lineno, col=node.col_offset + 1)
        position = 0
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                break  # positional mapping unknown past *args
            site.args.append(self._arg(arg, position, None, class_name))
            position += 1
        for kw in node.keywords:
            if kw.arg is None:
                continue  # **kwargs
            site.args.append(self._arg(kw.value, None, kw.arg, class_name))
        info.calls.append(site)

    def _arg(
        self,
        value: ast.AST,
        position: Optional[int],
        keyword: Optional[str],
        class_name: Optional[str],
    ) -> ArgUnit:
        call_ref = None
        if isinstance(value, ast.Call):
            call_ref = self._ref(value.func, class_name)
        return ArgUnit(
            position=position, keyword=keyword, unit=_unit_of(value),
            call_ref=call_ref, display=_short(value),
        )

    def _assign(self, node: ast.AST, class_name: Optional[str]) -> None:
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        else:
            assert isinstance(node, ast.AnnAssign)
            targets, value = [node.target], node.value
        if not isinstance(value, ast.Call):
            return
        ref = self._ref(value.func, class_name)
        if ref is None:
            return
        for target in targets:
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name is None:
                continue
            unit = suffix_unit(name)
            if unit is None:
                continue
            display = name if isinstance(target, ast.Name) else _short(target)
            self.summary.assigns.append(
                AssignFromCall(
                    target=display, unit=unit, ref=ref,
                    lineno=node.lineno, col=node.col_offset + 1,
                )
            )

    def _effect(self, node: ast.Call, info: FunctionInfo) -> None:
        dotted = self.imports.resolve(node.func)
        if dotted is None:
            return
        kind: Optional[str] = None
        if dotted in WALL_CLOCK_CALLS:
            kind = "wall-clock"
        elif not self._exempt_rng:
            if dotted == "random" or dotted.startswith("random."):
                kind = "stdlib-random"
            elif dotted in NUMPY_GLOBAL_RNG_CALLS:
                kind = "numpy-global-rng"
            elif (
                dotted == "numpy.random.default_rng"
                and not node.args and not node.keywords
            ):
                kind = "numpy-global-rng"
        if kind is None:
            return
        if self._effect_suppressed(kind, node.lineno):
            return
        info.effects.append(
            EffectSite(
                kind=kind, dotted=dotted,
                lineno=node.lineno, col=node.col_offset + 1,
            )
        )

    def _effect_suppressed(self, kind: str, lineno: int) -> bool:
        """A noqa of the direct rule (or DET004) silences propagation too."""
        rules = self.module.noqa.get(lineno)
        if not rules:
            return False
        return bool(rules & {"*", "DET004", EFFECT_RULES[kind]})

    # -- references and resolution keys ------------------------------------

    def _references(self, tree: ast.Module) -> None:
        referenced = self.summary.referenced
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                referenced.add(node.id)
            elif isinstance(node, ast.Attribute):
                referenced.add(node.attr)

    def _ref(self, func: ast.AST, class_name: Optional[str]) -> Optional[str]:
        dotted = self.imports.resolve(func)
        if dotted is not None:
            return f"d:{dotted}"
        if isinstance(func, ast.Name):
            return f"l:{func.id}"
        if isinstance(func, ast.Attribute):
            base = func.value
            if (
                isinstance(base, ast.Name)
                and base.id in ("self", "cls")
                and class_name is not None
            ):
                return f"s:{class_name}.{func.attr}"
            return f"a:{func.attr}"
        return None


def _signature_units(
    args: ast.arguments, info: FunctionInfo, skip_first: bool
) -> None:
    positional = list(args.posonlyargs) + list(args.args)
    if skip_first and positional:
        positional = positional[1:]
    info.pos_params = [(a.arg, suffix_unit(a.arg)) for a in positional]
    info.kw_units = {a.arg: suffix_unit(a.arg) for a in positional}
    info.kw_units.update(
        {a.arg: suffix_unit(a.arg) for a in args.kwonlyargs}
    )
    info.has_vararg = args.vararg is not None
    info.has_kwarg = args.kwarg is not None


def _all_exports(tree: ast.Module) -> List[str]:
    names: List[str] = []
    for stmt in tree.body:
        value = None
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
        ):
            value = stmt.value
        elif (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "__all__"
        ):
            value = stmt.value
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    names.append(element.value)
    return names

"""Per-module flow summaries: the unit of whole-program analysis.

Interprocedural analysis never holds two ASTs at once.  Phase one
reduces every module to a :class:`ModuleSummary` — its functions with
parameter/return unit declarations, the calls they make (with the unit
each argument carries), the determinism-relevant *effects* they perform
directly, the names the module references, and its exports.  Phase two
(:mod:`repro.analysis.flow.project`) stitches the summaries into a call
graph and propagates units and effects across it.

Summaries are plain-data and round-trip through JSON (``to_dict`` /
``from_dict``), which is what makes the incremental lint cache work: a
warm run re-reads bytes to hash them but re-parses nothing.

Call targets are recorded as *resolution keys*, resolved lazily by the
project pass:

* ``d:pkg.mod.name`` — import-resolved dotted path (alias-aware, via
  the same :class:`~repro.analysis.rules.base.ImportMap` machinery the
  per-file rules use),
* ``l:name`` — a bare name in the defining module,
* ``s:Class.name`` — a ``self.``/``cls.`` method call,
* ``a:name`` — an attribute call on an object of unknown type (the
  project pass resolves it only when the name is project-unique).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.engine import SourceModule
from repro.analysis.rules.base import ImportMap, suffix_unit
from repro.analysis.rules.determinism import (
    NUMPY_GLOBAL_RNG_CALLS,
    RNG_HOME,
    WALL_CLOCK_CALLS,
)

#: Pseudo-function holding module-level (import-time) calls and effects.
MODULE_BODY = "<module>"

#: Effect kind -> the per-file rule that polices the direct call, so a
#: targeted noqa on the direct line also silences transitive reports.
EFFECT_RULES = {
    "wall-clock": "DET001",
    "stdlib-random": "DET002",
    "numpy-global-rng": "DET003",
}

#: Method names whose call mutates the receiver in place.
MUTATING_METHODS = frozenset({
    "append", "appendleft", "add", "clear", "discard", "extend", "insert",
    "pop", "popitem", "popleft", "remove", "reverse", "setdefault", "sort",
    "update",
})

#: Dotted constructors (via ImportMap) that build mutable containers.
_MUTABLE_FACTORIES = frozenset({
    "collections.Counter", "collections.OrderedDict",
    "collections.defaultdict", "collections.deque",
})

#: Dotted decorators marking a process-global memo cache.
_CACHE_DECORATORS = frozenset({"functools.cache", "functools.lru_cache"})

#: An attribute-lookup chain must be at least this deep (dots) before
#: repeating it in a loop is worth a PERF003 hoist report.
_LOOKUP_MIN_DEPTH = 2

#: Repetitions of the same lookup within one loop that trigger PERF003.
_LOOKUP_MIN_COUNT = 3


@dataclass
class ArgUnit:
    """One call argument that might carry a unit."""

    position: Optional[int]        # positional index (callee-side), or None
    keyword: Optional[str]         # keyword name, or None
    unit: Optional[str]            # unit declared by the argument's name suffix
    call_ref: Optional[str]        # resolution key when the argument is a call
    display: str                   # short source text for messages

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (cache record)."""
        return {
            "position": self.position, "keyword": self.keyword,
            "unit": self.unit, "call_ref": self.call_ref,
            "display": self.display,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ArgUnit":
        return cls(
            position=data["position"], keyword=data["keyword"],
            unit=data["unit"], call_ref=data["call_ref"],
            display=data["display"],
        )


@dataclass
class CallSite:
    """One call expression inside a function body."""

    ref: str                       # resolution key (see module docstring)
    lineno: int
    col: int
    args: List[ArgUnit] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (cache record)."""
        return {
            "ref": self.ref, "lineno": self.lineno, "col": self.col,
            "args": [a.to_dict() for a in self.args],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CallSite":
        return cls(
            ref=data["ref"], lineno=data["lineno"], col=data["col"],
            args=[ArgUnit.from_dict(a) for a in data["args"]],
        )


@dataclass
class EffectSite:
    """A direct determinism-relevant call (wall clock / global RNG)."""

    kind: str                      # key into EFFECT_RULES
    dotted: str                    # canonical dotted call, e.g. "time.sleep"
    lineno: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (cache record)."""
        return {
            "kind": self.kind, "dotted": self.dotted,
            "lineno": self.lineno, "col": self.col,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EffectSite":
        return cls(
            kind=data["kind"], dotted=data["dotted"],
            lineno=data["lineno"], col=data["col"],
        )


@dataclass
class AssignFromCall:
    """A unit-suffixed name assigned directly from a call result."""

    target: str                    # display name ("offset_s", "self.delay_ms")
    unit: str                      # unit the target's suffix declares
    ref: str                       # resolution key of the called function
    lineno: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (cache record)."""
        return {
            "target": self.target, "unit": self.unit, "ref": self.ref,
            "lineno": self.lineno, "col": self.col,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AssignFromCall":
        return cls(
            target=data["target"], unit=data["unit"], ref=data["ref"],
            lineno=data["lineno"], col=data["col"],
        )


@dataclass
class PerfSite:
    """One statically detected per-iteration cost inside a function.

    ``kind`` selects the PERF rule family: ``alloc`` (container built
    per iteration), ``format`` (string formatted per iteration),
    ``lookup`` (deep attribute/key chain repeated within one loop),
    ``append`` (loop whose whole body is one ``list.append``).
    """

    kind: str
    lineno: int
    col: int
    detail: str                    # short human text for the message

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (cache record)."""
        return {
            "kind": self.kind, "lineno": self.lineno, "col": self.col,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PerfSite":
        return cls(
            kind=data["kind"], lineno=data["lineno"], col=data["col"],
            detail=data["detail"],
        )


@dataclass
class MutationSite:
    """A write to state that outlives the function invocation.

    ``scope`` is ``global`` (module-level name) or ``class`` (class
    attribute reached through ``self``/the class object); ``how`` is
    ``rebind`` (assignment), ``mutate`` (in-place method/subscript
    write), or ``next`` (consuming a shared iterator/counter).
    """

    scope: str
    name: str                      # the global, or "Class.attr"
    how: str
    lineno: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (cache record)."""
        return {
            "scope": self.scope, "name": self.name, "how": self.how,
            "lineno": self.lineno, "col": self.col,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MutationSite":
        return cls(
            scope=data["scope"], name=data["name"], how=data["how"],
            lineno=data["lineno"], col=data["col"],
        )


@dataclass
class ModuleGlobal:
    """A module-level binding of shared-state interest.

    ``kind`` is ``mutable`` (list/dict/set/…, shared by every reader in
    the process) or ``counter`` (``itertools.count``, a process-global
    sequence).
    """

    name: str
    kind: str
    lineno: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (cache record)."""
        return {
            "name": self.name, "kind": self.kind,
            "lineno": self.lineno, "col": self.col,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleGlobal":
        return cls(
            name=data["name"], kind=data["kind"],
            lineno=data["lineno"], col=data["col"],
        )


@dataclass
class FunctionInfo:
    """Everything the project pass needs to know about one function."""

    qualname: str                  # "poll" or "SntpClient.poll" or MODULE_BODY
    name: str
    lineno: int
    col: int
    pos_params: List[Tuple[str, Optional[str]]] = field(default_factory=list)
    kw_units: Dict[str, Optional[str]] = field(default_factory=dict)
    has_vararg: bool = False
    has_kwarg: bool = False
    name_unit: Optional[str] = None    # unit declared by the function name
    return_descs: List[str] = field(default_factory=list)  # "u:ms"/"c:<ref>"/"?"
    calls: List[CallSite] = field(default_factory=list)
    effects: List[EffectSite] = field(default_factory=list)
    is_public: bool = True
    is_method: bool = False
    decorated: bool = False
    hot_annotated: bool = False    # "# repro: hot" on the def line
    cache_decorator_lineno: Optional[int] = None  # functools.(lru_)cache
    perf_sites: List[PerfSite] = field(default_factory=list)
    mutations: List[MutationSite] = field(default_factory=list)
    obs_sites: List[PerfSite] = field(default_factory=list)  # OBS003

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (cache record)."""
        return {
            "qualname": self.qualname, "name": self.name,
            "lineno": self.lineno, "col": self.col,
            "pos_params": [list(p) for p in self.pos_params],
            "kw_units": dict(self.kw_units),
            "has_vararg": self.has_vararg, "has_kwarg": self.has_kwarg,
            "name_unit": self.name_unit,
            "return_descs": list(self.return_descs),
            "calls": [c.to_dict() for c in self.calls],
            "effects": [e.to_dict() for e in self.effects],
            "is_public": self.is_public, "is_method": self.is_method,
            "decorated": self.decorated,
            "hot_annotated": self.hot_annotated,
            "cache_decorator_lineno": self.cache_decorator_lineno,
            "perf_sites": [p.to_dict() for p in self.perf_sites],
            "mutations": [m.to_dict() for m in self.mutations],
            "obs_sites": [p.to_dict() for p in self.obs_sites],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionInfo":
        return cls(
            qualname=data["qualname"], name=data["name"],
            lineno=data["lineno"], col=data["col"],
            pos_params=[(p[0], p[1]) for p in data["pos_params"]],
            kw_units=dict(data["kw_units"]),
            has_vararg=data["has_vararg"], has_kwarg=data["has_kwarg"],
            name_unit=data["name_unit"],
            return_descs=list(data["return_descs"]),
            calls=[CallSite.from_dict(c) for c in data["calls"]],
            effects=[EffectSite.from_dict(e) for e in data["effects"]],
            is_public=data["is_public"], is_method=data["is_method"],
            decorated=data["decorated"],
            hot_annotated=data.get("hot_annotated", False),
            cache_decorator_lineno=data.get("cache_decorator_lineno"),
            perf_sites=[
                PerfSite.from_dict(p) for p in data.get("perf_sites", [])
            ],
            mutations=[
                MutationSite.from_dict(m) for m in data.get("mutations", [])
            ],
            obs_sites=[
                PerfSite.from_dict(p) for p in data.get("obs_sites", [])
            ],
        )


@dataclass
class ClassInfo:
    """A class: constructor signature (for UNIT004) and method table."""

    name: str
    lineno: int
    bases: List[str] = field(default_factory=list)   # resolution keys
    ctor_pos_params: List[Tuple[str, Optional[str]]] = field(default_factory=list)
    ctor_kw_units: Dict[str, Optional[str]] = field(default_factory=dict)
    methods: List[str] = field(default_factory=list)
    #: Class-body ``attr = <mutable>`` assignments -> lineno (the
    #: cross-instance shared-state hazard CONC002 polices).
    mutable_class_attrs: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (cache record)."""
        return {
            "name": self.name, "lineno": self.lineno,
            "bases": list(self.bases),
            "ctor_pos_params": [list(p) for p in self.ctor_pos_params],
            "ctor_kw_units": dict(self.ctor_kw_units),
            "methods": list(self.methods),
            "mutable_class_attrs": dict(self.mutable_class_attrs),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassInfo":
        return cls(
            name=data["name"], lineno=data["lineno"],
            bases=list(data["bases"]),
            ctor_pos_params=[(p[0], p[1]) for p in data["ctor_pos_params"]],
            ctor_kw_units=dict(data["ctor_kw_units"]),
            methods=list(data["methods"]),
            mutable_class_attrs=dict(data.get("mutable_class_attrs", {})),
        )


@dataclass
class ModuleSummary:
    """One module, reduced to what interprocedural rules consume."""

    path: str
    module: Tuple[str, ...]
    functions: List[FunctionInfo] = field(default_factory=list)
    classes: List[ClassInfo] = field(default_factory=list)
    assigns: List[AssignFromCall] = field(default_factory=list)
    referenced: Set[str] = field(default_factory=set)
    exports: List[str] = field(default_factory=list)
    import_bindings: Dict[str, str] = field(default_factory=dict)
    module_globals: List[ModuleGlobal] = field(default_factory=list)

    def dotted(self) -> str:
        """The dotted module name (``repro.ntp.wire``)."""
        return ".".join(self.module)

    @property
    def package(self) -> Optional[str]:
        if len(self.module) >= 2 and self.module[0] == "repro":
            return self.module[1]
        return None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (cache record)."""
        return {
            "path": self.path, "module": list(self.module),
            "functions": [f.to_dict() for f in self.functions],
            "classes": [c.to_dict() for c in self.classes],
            "assigns": [a.to_dict() for a in self.assigns],
            "referenced": sorted(self.referenced),
            "exports": list(self.exports),
            "import_bindings": dict(self.import_bindings),
            "module_globals": [g.to_dict() for g in self.module_globals],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            path=data["path"], module=tuple(data["module"]),
            functions=[FunctionInfo.from_dict(f) for f in data["functions"]],
            classes=[ClassInfo.from_dict(c) for c in data["classes"]],
            assigns=[AssignFromCall.from_dict(a) for a in data["assigns"]],
            referenced=set(data["referenced"]),
            exports=list(data["exports"]),
            import_bindings=dict(data["import_bindings"]),
            module_globals=[
                ModuleGlobal.from_dict(g)
                for g in data.get("module_globals", [])
            ],
        )


def summarize(module: SourceModule) -> ModuleSummary:
    """Reduce a parsed module to its flow summary."""
    return _Summarizer(module).run()


# ---------------------------------------------------------------------------
# extraction


def _short(node: ast.AST, limit: int = 40) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failure is cosmetic only
        text = "<expr>"
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _unit_of(node: ast.AST) -> Optional[str]:
    """Unit a value expression declares via a name suffix, if any.

    Unwraps unary minus and subscripts (``delays_ms[i]`` is read as
    milliseconds: the container suffix states the element unit).
    """
    while True:
        if isinstance(node, ast.UnaryOp):
            node = node.operand
        elif isinstance(node, ast.Subscript):
            node = node.value
        else:
            break
    if isinstance(node, ast.Name):
        return suffix_unit(node.id)
    if isinstance(node, ast.Attribute):
        return suffix_unit(node.attr)
    return None


class _Summarizer:
    def __init__(self, module: SourceModule) -> None:
        self.module = module
        self.imports = ImportMap(module.tree)
        self.summary = ModuleSummary(path=module.path, module=module.module)
        self._exempt_rng = module.module == RNG_HOME

    def run(self) -> ModuleSummary:
        tree = self.module.tree
        module_fn = FunctionInfo(
            qualname=MODULE_BODY, name=MODULE_BODY, lineno=1, col=1,
            is_public=False,
        )
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function(stmt, class_name=None, module_fn=module_fn)
            elif isinstance(stmt, ast.ClassDef):
                self._class(stmt, module_fn)
            else:
                self._collect(stmt, module_fn, function=MODULE_BODY,
                              collect_returns=False, class_name=None)
        self.summary.functions.append(module_fn)
        self._module_globals(tree)
        self._references(tree)
        self.summary.exports = _all_exports(tree)
        self.summary.import_bindings = {
            local: dotted
            for local, dotted in self.imports.aliases.items()
            if dotted.startswith("repro.") or dotted == "repro"
        }
        return self.summary

    # -- functions ---------------------------------------------------------

    def _function(
        self,
        node: ast.AST,
        class_name: Optional[str],
        module_fn: FunctionInfo,
    ) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        qualname = f"{class_name}.{node.name}" if class_name else node.name
        hot_lines = self.module.hot_lines
        info = FunctionInfo(
            qualname=qualname, name=node.name,
            lineno=node.lineno, col=node.col_offset + 1,
            name_unit=suffix_unit(node.name),
            is_public=not node.name.startswith("_"),
            is_method=class_name is not None,
            decorated=bool(node.decorator_list),
            hot_annotated=(
                node.lineno in hot_lines
                or any(d.lineno in hot_lines for d in node.decorator_list)
            ),
        )
        _signature_units(node.args, info, skip_first=class_name is not None)
        for decorator in node.decorator_list:
            # Decorator application runs at import time.
            self._collect(decorator, module_fn, function=MODULE_BODY,
                          collect_returns=False, class_name=class_name)
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            if self.imports.resolve(target) in _CACHE_DECORATORS:
                info.cache_decorator_lineno = decorator.lineno
        for stmt in node.body:
            self._collect(stmt, info, function=qualname,
                          collect_returns=True, class_name=class_name)
        scan = _BodyScan(node, class_name)
        info.perf_sites = scan.perf_sites
        info.mutations = scan.mutations
        info.obs_sites = scan.obs_sites
        self.summary.functions.append(info)

    def _class(self, node: ast.ClassDef, module_fn: FunctionInfo) -> None:
        cls_info = ClassInfo(name=node.name, lineno=node.lineno)
        for base in node.bases:
            ref = self._ref(base, class_name=None)
            if ref is not None:
                cls_info.bases.append(ref)
        is_dataclass = any(
            self.imports.resolve(d.func if isinstance(d, ast.Call) else d)
            == "dataclasses.dataclass"
            for d in node.decorator_list
        )
        fields: List[Tuple[str, Optional[str]]] = []
        ctor: Optional[ast.FunctionDef] = None
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls_info.methods.append(stmt.name)
                if stmt.name == "__init__" and isinstance(stmt, ast.FunctionDef):
                    ctor = stmt
                self._function(stmt, class_name=node.name, module_fn=module_fn)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if not stmt.target.id.startswith("_"):
                    fields.append(
                        (stmt.target.id, suffix_unit(stmt.target.id))
                    )
                if stmt.value is not None:
                    self._collect(stmt.value, module_fn, function=MODULE_BODY,
                                  collect_returns=False, class_name=node.name)
            else:
                # Class-body statements execute at import time.
                self._collect(stmt, module_fn, function=MODULE_BODY,
                              collect_returns=False, class_name=node.name)
        if ctor is not None:
            pseudo = FunctionInfo(qualname="", name="", lineno=0, col=0)
            _signature_units(ctor.args, pseudo, skip_first=True)
            cls_info.ctor_pos_params = pseudo.pos_params
            cls_info.ctor_kw_units = pseudo.kw_units
        elif is_dataclass:
            cls_info.ctor_pos_params = fields
            cls_info.ctor_kw_units = dict(fields)
        if not is_dataclass:
            # Dataclass field defaults are per-instance (default_factory);
            # plain class bodies binding a container share it instead.
            for stmt in node.body:
                targets: List[ast.Name] = []
                value = None
                if isinstance(stmt, ast.Assign):
                    targets = [
                        t for t in stmt.targets if isinstance(t, ast.Name)
                    ]
                    value = stmt.value
                elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    targets = [stmt.target]
                    value = stmt.value
                if value is None:
                    continue
                if _mutable_kind(value, self.imports) is None:
                    continue
                for t in targets:
                    if not t.id.startswith("__"):
                        cls_info.mutable_class_attrs[t.id] = stmt.lineno
        self.summary.classes.append(cls_info)

    def _module_globals(self, tree: ast.Module) -> None:
        """Record module-level mutable containers and shared counters.

        Only direct module-body assignments count; conditional bindings
        (``if TYPE_CHECKING`` blocks and friends) stay out so the facts
        are conservative.
        """
        for stmt in tree.body:
            targets: List[ast.Name] = []
            value = None
            if isinstance(stmt, ast.Assign):
                targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                targets = [stmt.target]
                value = stmt.value
            if value is None:
                continue
            kind = _mutable_kind(value, self.imports)
            if kind is None:
                continue
            for t in targets:
                if t.id.startswith("__"):
                    continue  # __all__ and other dunder metadata
                self.summary.module_globals.append(
                    ModuleGlobal(
                        name=t.id, kind=kind,
                        lineno=stmt.lineno, col=stmt.col_offset + 1,
                    )
                )

    # -- bodies ------------------------------------------------------------

    def _collect(
        self,
        node: ast.AST,
        info: FunctionInfo,
        function: str,
        collect_returns: bool,
        class_name: Optional[str],
    ) -> None:
        """Walk a statement/expression, recording calls, effects, returns.

        Nested function bodies are folded into the enclosing function's
        call and effect sets (their execution is attributed to it), but
        their ``return`` statements are not the enclosing function's.
        """
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in node.body:
                self._collect(child, info, function, False, class_name)
            return
        if isinstance(node, ast.Lambda):
            self._collect(node.body, info, function, False, class_name)
            return
        if isinstance(node, ast.Return) and collect_returns:
            if node.value is not None:
                self.summary_return(info, node.value, class_name)
        if isinstance(node, ast.Call):
            self._call(node, info, class_name)
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            self._assign(node, class_name)
        for child in ast.iter_child_nodes(node):
            self._collect(child, info, function, collect_returns, class_name)

    def summary_return(
        self, info: FunctionInfo, value: ast.AST, class_name: Optional[str]
    ) -> None:
        unit = _unit_of(value)
        if unit is not None:
            info.return_descs.append(f"u:{unit}")
            return
        if isinstance(value, ast.Call):
            ref = self._ref(value.func, class_name)
            if ref is not None:
                info.return_descs.append(f"c:{ref}")
                return
        info.return_descs.append("?")

    def _call(
        self, node: ast.Call, info: FunctionInfo, class_name: Optional[str]
    ) -> None:
        self._effect(node, info)
        ref = self._ref(node.func, class_name)
        if ref is None:
            return
        site = CallSite(ref=ref, lineno=node.lineno, col=node.col_offset + 1)
        position = 0
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                break  # positional mapping unknown past *args
            site.args.append(self._arg(arg, position, None, class_name))
            position += 1
        for kw in node.keywords:
            if kw.arg is None:
                continue  # **kwargs
            site.args.append(self._arg(kw.value, None, kw.arg, class_name))
        info.calls.append(site)

    def _arg(
        self,
        value: ast.AST,
        position: Optional[int],
        keyword: Optional[str],
        class_name: Optional[str],
    ) -> ArgUnit:
        call_ref = None
        if isinstance(value, ast.Call):
            call_ref = self._ref(value.func, class_name)
        return ArgUnit(
            position=position, keyword=keyword, unit=_unit_of(value),
            call_ref=call_ref, display=_short(value),
        )

    def _assign(self, node: ast.AST, class_name: Optional[str]) -> None:
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        else:
            assert isinstance(node, ast.AnnAssign)
            targets, value = [node.target], node.value
        if not isinstance(value, ast.Call):
            return
        ref = self._ref(value.func, class_name)
        if ref is None:
            return
        for target in targets:
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name is None:
                continue
            unit = suffix_unit(name)
            if unit is None:
                continue
            display = name if isinstance(target, ast.Name) else _short(target)
            self.summary.assigns.append(
                AssignFromCall(
                    target=display, unit=unit, ref=ref,
                    lineno=node.lineno, col=node.col_offset + 1,
                )
            )

    def _effect(self, node: ast.Call, info: FunctionInfo) -> None:
        dotted = self.imports.resolve(node.func)
        if dotted is None:
            return
        kind: Optional[str] = None
        if dotted in WALL_CLOCK_CALLS:
            kind = "wall-clock"
        elif not self._exempt_rng:
            if dotted == "random" or dotted.startswith("random."):
                kind = "stdlib-random"
            elif dotted in NUMPY_GLOBAL_RNG_CALLS:
                kind = "numpy-global-rng"
            elif (
                dotted == "numpy.random.default_rng"
                and not node.args and not node.keywords
            ):
                kind = "numpy-global-rng"
        if kind is None:
            return
        if self._effect_suppressed(kind, node.lineno):
            return
        info.effects.append(
            EffectSite(
                kind=kind, dotted=dotted,
                lineno=node.lineno, col=node.col_offset + 1,
            )
        )

    def _effect_suppressed(self, kind: str, lineno: int) -> bool:
        """A noqa of the direct rule (or DET004) silences propagation too."""
        rules = self.module.noqa.get(lineno)
        if not rules:
            return False
        return bool(rules & {"*", "DET004", EFFECT_RULES[kind]})

    # -- references and resolution keys ------------------------------------

    def _references(self, tree: ast.Module) -> None:
        referenced = self.summary.referenced
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                referenced.add(node.id)
            elif isinstance(node, ast.Attribute):
                referenced.add(node.attr)

    def _ref(self, func: ast.AST, class_name: Optional[str]) -> Optional[str]:
        dotted = self.imports.resolve(func)
        if dotted is not None:
            return f"d:{dotted}"
        if isinstance(func, ast.Name):
            return f"l:{func.id}"
        if isinstance(func, ast.Attribute):
            base = func.value
            if (
                isinstance(base, ast.Name)
                and base.id in ("self", "cls")
                and class_name is not None
            ):
                return f"s:{class_name}.{func.attr}"
            return f"a:{func.attr}"
        return None


def _signature_units(
    args: ast.arguments, info: FunctionInfo, skip_first: bool
) -> None:
    positional = list(args.posonlyargs) + list(args.args)
    if skip_first and positional:
        positional = positional[1:]
    info.pos_params = [(a.arg, suffix_unit(a.arg)) for a in positional]
    info.kw_units = {a.arg: suffix_unit(a.arg) for a in positional}
    info.kw_units.update(
        {a.arg: suffix_unit(a.arg) for a in args.kwonlyargs}
    )
    info.has_vararg = args.vararg is not None
    info.has_kwarg = args.kwarg is not None


def _mutable_kind(value: ast.AST, imports: ImportMap) -> Optional[str]:
    """``mutable``/``counter`` when ``value`` builds shared mutable state."""
    if isinstance(value, (ast.List, ast.Dict, ast.Set,
                          ast.ListComp, ast.DictComp, ast.SetComp)):
        return "mutable"
    if isinstance(value, ast.Call):
        dotted = imports.resolve(value.func)
        if dotted == "itertools.count":
            return "counter"
        if dotted in _MUTABLE_FACTORIES:
            return "mutable"
        if isinstance(value.func, ast.Name) and value.func.id in (
            "list", "dict", "set"
        ):
            return "mutable"
    return None


def _attr_chain(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name-rooted attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _bound_names(node: ast.AST) -> Tuple[Set[str], Set[str]]:
    """(locally bound names, ``global``-declared names) for a function.

    Conservative: every Store target anywhere in the body (including
    nested scopes) counts as bound, so a name is only treated as a
    module global when nothing in the function could shadow it.
    """
    bound: Set[str] = set()
    globs: Set[str] = set()
    for n in ast.walk(node):
        if isinstance(n, ast.Global):
            globs.update(n.names)
        elif isinstance(n, ast.arg):
            bound.add(n.arg)
        elif isinstance(n, ast.Name) and isinstance(
            n.ctx, (ast.Store, ast.Del)
        ):
            bound.add(n.id)
        elif isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                            ast.ClassDef)):
            bound.add(n.name)
        elif isinstance(n, ast.ExceptHandler) and n.name:
            bound.add(n.name)
        elif isinstance(n, ast.alias):
            bound.add((n.asname or n.name).split(".")[0])
    return bound - globs, globs


def _append_only_target(node: ast.For) -> Optional[str]:
    """Name appended to when the loop body is exactly one ``x.append``.

    A single guarding ``if`` (no else) around the append still counts —
    that is a filtered comprehension / boolean-mask batch in disguise.
    """
    if node.orelse:
        return None
    body = node.body
    if len(body) == 1 and isinstance(body[0], ast.If) and not body[0].orelse:
        body = body[0].body
    if len(body) != 1:
        return None
    stmt = body[0]
    if (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Attribute)
        and stmt.value.func.attr == "append"
        and isinstance(stmt.value.func.value, ast.Name)
    ):
        return stmt.value.func.value.id
    return None


class _BodyScan(ast.NodeVisitor):
    """Per-function PERF/CONC fact extraction.

    Records allocation/format/lookup/append sites relative to loop
    nesting (the PERF rules only surface them when the function turns
    out hot) and every write to state outliving the invocation (the
    CONC rules' raw material).  Nested ``def``/``lambda`` bodies are
    skipped: their execution is not tied to these loops.
    """

    def __init__(self, node: ast.AST, class_name: Optional[str]) -> None:
        self.class_name = class_name
        self.perf_sites: List[PerfSite] = []
        self.mutations: List[MutationSite] = []
        self.obs_sites: List[PerfSite] = []  # OBS003 raw material
        self._depth = 0
        self.bound, self.global_decls = _bound_names(node)
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for stmt in node.body:
            self.visit(stmt)
        self.perf_sites.sort(key=lambda s: (s.lineno, s.col, s.kind))
        self.mutations.sort(key=lambda m: (m.lineno, m.col, m.name))
        self.obs_sites.sort(key=lambda s: (s.lineno, s.col, s.kind))

    # -- structure ---------------------------------------------------------

    def visit_FunctionDef(self, node: ast.AST) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef

    def visit_Raise(self, node: ast.Raise) -> None:
        pass  # exceptional paths may build messages freely

    def visit_Assert(self, node: ast.Assert) -> None:
        self.visit(node.test)  # the message is an exceptional path too

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.target)
        self.visit(node.iter)
        target = _append_only_target(node)
        if target is not None:
            self._site(node, "append", f"'{target}'")
        self._enter_loop(node)

    visit_AsyncFor = visit_For

    def visit_While(self, node: ast.While) -> None:
        # The test re-evaluates every iteration, so it scans in-loop.
        self._enter_loop(node, extra=[node.test])

    def _enter_loop(
        self, node: ast.AST, extra: Optional[List[ast.AST]] = None
    ) -> None:
        if self._depth == 0:
            self._count_lookups(node)
        self._depth += 1
        for child in extra or []:
            self.visit(child)
        for stmt in getattr(node, "body", []):
            self.visit(stmt)
        for stmt in getattr(node, "orelse", []):
            self.visit(stmt)
        self._depth -= 1

    # -- per-iteration costs ----------------------------------------------

    def _site(self, node: ast.AST, kind: str, detail: str) -> None:
        self.perf_sites.append(
            PerfSite(
                kind=kind, lineno=node.lineno,
                col=node.col_offset + 1, detail=detail,
            )
        )

    def visit_List(self, node: ast.List) -> None:
        if self._depth and node.elts:
            self._site(node, "alloc", "list display")
        self.generic_visit(node)

    def visit_Set(self, node: ast.Set) -> None:
        if self._depth and node.elts:
            self._site(node, "alloc", "set display")
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        if self._depth and node.keys:
            self._site(node, "alloc", "dict display")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.AST) -> None:
        if self._depth:
            self._site(node, "alloc", "comprehension")
        self.generic_visit(node)

    visit_SetComp = visit_ListComp
    visit_DictComp = visit_ListComp
    # Generator expressions stay exempt: lazy, no per-element container.

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        if self._depth:
            self._site(node, "format", "f-string")
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if (
            self._depth
            and isinstance(node.op, ast.Mod)
            and isinstance(node.left, ast.Constant)
            and isinstance(node.left.value, str)
        ):
            self._site(node, "format", "%-formatting")
        self.generic_visit(node)

    # -- calls: allocs, str.format, shared-state mutation ------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if self._depth:
            if isinstance(func, ast.Name) and func.id in (
                "list", "dict", "set", "tuple"
            ):
                self._site(node, "alloc", f"{func.id}() call")
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "format"
                and isinstance(func.value, ast.Constant)
                and isinstance(func.value.value, str)
            ):
                self._site(node, "format", "str.format()")
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            base = func.value
            if isinstance(base, ast.Name) and base.id not in self.bound:
                self._mutation("global", base.id, "mutate", node)
            elif self._self_attr(base) is not None:
                self._mutation(
                    "class", self._self_attr(base), "mutate", node
                )
        if (
            isinstance(func, ast.Name)
            and func.id == "next"
            and node.args
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id not in self.bound
        ):
            self._mutation("global", node.args[0].id, "next", node)
        self._obs_site(node, func)
        self.generic_visit(node)

    def _obs_site(self, node: ast.Call, func: ast.AST) -> None:
        """Record direct telemetry emission (OBS003 raw material).

        A call whose attribute chain ends ``<trace|_trace>.<emit|append>``
        writes straight into the TraceLog; one ending
        ``<metrics|_metrics>.<counter|gauge|histogram>`` does a per-event
        registry lookup.  Both bypass the ring-buffer sink, which the
        sanctioned ``telemetry.emit`` / ``telemetry.count`` facade routes
        through.  Sites are recorded unconditionally; the OBS003 rule
        only surfaces them when the function sits in a hot closure.
        """
        chain = _attr_chain(func)
        if chain is None:
            return
        parts = chain.split(".")
        if len(parts) < 2:
            return
        recv, meth = parts[-2], parts[-1]
        if recv in ("trace", "_trace") and meth in ("emit", "append"):
            self.obs_sites.append(
                PerfSite(
                    kind="emit", lineno=node.lineno,
                    col=node.col_offset + 1, detail=f"'{chain}'",
                )
            )
        elif recv in ("metrics", "_metrics") and meth in (
            "counter", "gauge", "histogram"
        ):
            self.obs_sites.append(
                PerfSite(
                    kind="registry", lineno=node.lineno,
                    col=node.col_offset + 1, detail=f"'{chain}'",
                )
            )

    # -- stores ------------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._store(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._store(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._store(node.target, node)
        self.generic_visit(node)

    def _store(self, target: ast.AST, node: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._store(element, node)
            return
        if isinstance(target, ast.Name) and target.id in self.global_decls:
            self._mutation("global", target.id, "rebind", node)
        elif isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name) and base.id not in self.bound:
                self._mutation("global", base.id, "mutate", node)
            elif self._self_attr(base) is not None:
                self._mutation("class", self._self_attr(base), "mutate", node)
        elif isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name) and (
                base.id == self.class_name or base.id == "cls"
            ):
                name = f"{self.class_name}.{target.attr}"
                self._mutation("class", name, "rebind", node)

    def _self_attr(self, node: ast.AST) -> Optional[str]:
        """``Class.attr`` when ``node`` is ``self.attr`` in a method."""
        if (
            self.class_name is not None
            and isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return f"{self.class_name}.{node.attr}"
        return None

    def _mutation(
        self, scope: str, name: Optional[str], how: str, node: ast.AST
    ) -> None:
        if name is None:
            return
        self.mutations.append(
            MutationSite(
                scope=scope, name=name, how=how,
                lineno=node.lineno, col=node.col_offset + 1,
            )
        )

    # -- repeated deep lookups (PERF003) -----------------------------------

    def _count_lookups(self, loop: ast.AST) -> None:
        """One pass per outermost loop: lookups repeated across its body."""
        loop_bound: Set[str] = set()
        stored_chains: Set[str] = set()
        for n in ast.walk(loop):
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store):
                loop_bound.add(n.id)
            elif isinstance(n, ast.arg):
                loop_bound.add(n.arg)
            elif isinstance(n, ast.Attribute) and isinstance(
                n.ctx, ast.Store
            ):
                chain = _attr_chain(n)
                if chain is not None:
                    stored_chains.add(chain)
        attr_nodes = [
            n for n in ast.walk(loop)
            if isinstance(n, ast.Attribute) and isinstance(n.ctx, ast.Load)
        ]
        inner = {id(n.value) for n in attr_nodes}
        counts: Dict[str, List[int]] = {}
        for n in attr_nodes:
            if id(n) in inner:
                continue  # strict sub-chain of a longer lookup
            chain = _attr_chain(n)
            if chain is None or chain.count(".") < _LOOKUP_MIN_DEPTH:
                continue
            root = chain.split(".", 1)[0]
            if root in loop_bound:
                continue  # rebound per iteration; not hoistable
            if any(
                chain == s or chain.startswith(s + ".")
                for s in stored_chains
            ):
                continue  # written inside the loop; not hoistable
            entry = counts.setdefault(
                chain, [0, n.lineno, n.col_offset + 1]
            )
            entry[0] += 1
        for chain in sorted(
            counts, key=lambda c: (counts[c][1], counts[c][2], c)
        ):
            count, lineno, col = counts[chain]
            if count >= _LOOKUP_MIN_COUNT:
                self.perf_sites.append(
                    PerfSite(
                        kind="lookup", lineno=lineno, col=col,
                        detail=f"'{chain}' ({count}x in one loop)",
                    )
                )


def _all_exports(tree: ast.Module) -> List[str]:
    names: List[str] = []
    for stmt in tree.body:
        value = None
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
        ):
            value = stmt.value
        elif (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "__all__"
        ):
            value = stmt.value
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    names.append(element.value)
    return names

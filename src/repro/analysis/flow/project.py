"""The whole-program model: summaries stitched into a call graph.

A :class:`Project` is built from :class:`ModuleSummary` objects (phase
one output, possibly straight from the incremental cache) and provides
the three derived facts the interprocedural rules consume:

* **call resolution** — a summary-level resolution key plus the calling
  module resolves to a concrete project function (alias-aware dotted
  paths, re-exports through package ``__init__`` bindings, ``self.``
  method dispatch through recorded base classes, and a unique-name
  fallback for attribute calls on objects of unknown type);
* **return units** — every function's time unit, from its name suffix
  or propagated from what it returns (a fixpoint over the call graph,
  so a chain of ``return helper()`` hops converges);
* **transitive effects** — for every function, the set of wall-clock /
  global-RNG calls reachable from it, each with a witness chain for
  diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from repro.analysis.flow.summary import (
    MODULE_BODY,
    ClassInfo,
    FunctionInfo,
    ModuleSummary,
)

#: Resolution recursion bound (re-export chains, base-class walks).
_MAX_HOPS = 8


@dataclass
class FunctionEntry:
    """A project function: summary info plus its defining module."""

    info: FunctionInfo
    module: ModuleSummary
    class_name: Optional[str] = None

    @property
    def full(self) -> str:
        return f"{self.module.dotted()}.{self.info.qualname}"

    @property
    def display(self) -> str:
        """Human-facing name: module for module bodies, else qualname."""
        if self.info.qualname == MODULE_BODY:
            return f"{self.module.dotted()} (module body)"
        return f"{self.module.dotted()}.{self.info.qualname}"

    def endpoint(self) -> str:
        """Baseline endpoint string: ``path::qualname``."""
        return f"{self.module.path}::{self.info.qualname}"


@dataclass
class ClassEntry:
    """A project class and where it lives."""

    info: ClassInfo
    module: ModuleSummary

    @property
    def full(self) -> str:
        return f"{self.module.dotted()}.{self.info.name}"


@dataclass
class EffectPath:
    """One transitive effect: what is reached and through which edge."""

    kind: str                      # wall-clock / stdlib-random / numpy-global-rng
    dotted: str                    # e.g. "time.sleep"
    via: Optional[str] = None      # full name of the callee that carries it
                                   # (None when the effect is direct)
    direct_in: str = ""            # full name of the function making the call


class Project:
    """Summaries indexed and closed over the call graph."""

    def __init__(
        self,
        summaries: Sequence[ModuleSummary],
        test_references: Optional[Set[str]] = None,
    ) -> None:
        self.summaries = list(summaries)
        self.test_references: FrozenSet[str] = frozenset(test_references or ())
        self.modules: Dict[str, ModuleSummary] = {
            s.dotted(): s for s in self.summaries
        }
        self.functions: Dict[str, FunctionEntry] = {}
        self.classes: Dict[str, ClassEntry] = {}
        self._by_name: Dict[str, List[str]] = {}
        for summary in self.summaries:
            for cls in summary.classes:
                entry = ClassEntry(info=cls, module=summary)
                self.classes[entry.full] = entry
            for fn in summary.functions:
                entry = FunctionEntry(info=fn, module=summary)
                if fn.is_method:
                    entry.class_name = fn.qualname.split(".", 1)[0]
                self.functions[entry.full] = entry
                if fn.qualname != MODULE_BODY:
                    self._by_name.setdefault(fn.name, []).append(entry.full)
        self.return_units: Dict[str, Optional[str]] = {}
        self.effects: Dict[str, Dict[str, EffectPath]] = {}
        self._infer_return_units()
        self._propagate_effects()

    # -- resolution --------------------------------------------------------

    def resolve(
        self, ref: str, from_module: str, _hops: int = 0
    ) -> Optional[FunctionEntry]:
        """Resolve a summary resolution key to a project function.

        Class references resolve to the constructor: a synthetic entry
        whose parameter units are the recorded ``__init__`` (or
        dataclass field) signature.
        """
        if _hops > _MAX_HOPS:
            return None
        kind, _, name = ref.partition(":")
        if kind == "d":
            return self._resolve_dotted(name, _hops)
        if kind == "l":
            return self._resolve_in_module(from_module, name, _hops)
        if kind == "s":
            class_name, _, method = name.partition(".")
            return self._resolve_method(from_module, class_name, method, _hops)
        if kind == "a":
            candidates = self._by_name.get(name, [])
            if len(candidates) == 1:
                return self.functions[candidates[0]]
            return None
        return None

    def _resolve_dotted(self, dotted: str, hops: int) -> Optional[FunctionEntry]:
        entry = self.functions.get(dotted)
        if entry is not None:
            return entry
        cls = self.classes.get(dotted)
        if cls is not None:
            return self._ctor_entry(cls)
        # Longest module prefix, then resolve the remainder inside it
        # (covers re-exports through package __init__ bindings).
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            if module in self.modules:
                remainder = parts[cut:]
                if len(remainder) == 1:
                    return self._resolve_in_module(
                        module, remainder[0], hops + 1
                    )
                if len(remainder) == 2:
                    return self._resolve_method(
                        module, remainder[0], remainder[1], hops + 1
                    )
                return None
        return None

    def _resolve_in_module(
        self, module: str, name: str, hops: int
    ) -> Optional[FunctionEntry]:
        if hops > _MAX_HOPS or module not in self.modules:
            return None
        entry = self.functions.get(f"{module}.{name}")
        if entry is not None and not entry.info.is_method:
            return entry
        cls = self.classes.get(f"{module}.{name}")
        if cls is not None:
            return self._ctor_entry(cls)
        target = self.modules[module].import_bindings.get(name)
        if target is not None:
            return self._resolve_dotted(target, hops + 1)
        return None

    def _resolve_method(
        self, module: str, class_name: str, method: str, hops: int
    ) -> Optional[FunctionEntry]:
        if hops > _MAX_HOPS:
            return None
        cls = self.classes.get(f"{module}.{class_name}")
        if cls is None:
            # The class may itself be a re-exported name.
            binding = self.modules.get(module)
            target = binding.import_bindings.get(class_name) if binding else None
            if target is not None:
                cls = self.classes.get(target)
        if cls is None:
            return None
        return self._method_on(cls, method, hops)

    def _method_on(
        self, cls: ClassEntry, method: str, hops: int
    ) -> Optional[FunctionEntry]:
        if hops > _MAX_HOPS:
            return None
        if method in cls.info.methods:
            return self.functions.get(
                f"{cls.module.dotted()}.{cls.info.name}.{method}"
            )
        for base_ref in cls.info.bases:
            base = self._resolve_class_ref(base_ref, cls.module.dotted(), hops)
            if base is not None:
                found = self._method_on(base, method, hops + 1)
                if found is not None:
                    return found
        return None

    def _resolve_class_ref(
        self, ref: str, from_module: str, hops: int
    ) -> Optional[ClassEntry]:
        kind, _, name = ref.partition(":")
        if kind == "d":
            cls = self.classes.get(name)
            if cls is not None:
                return cls
            parts = name.split(".")
            for cut in range(len(parts) - 1, 0, -1):
                module = ".".join(parts[:cut])
                if module in self.modules and len(parts) - cut == 1:
                    return self._class_in_module(module, parts[-1], hops)
            return None
        if kind == "l":
            return self._class_in_module(from_module, name, hops)
        return None

    def _class_in_module(
        self, module: str, name: str, hops: int
    ) -> Optional[ClassEntry]:
        if hops > _MAX_HOPS or module not in self.modules:
            return None
        cls = self.classes.get(f"{module}.{name}")
        if cls is not None:
            return cls
        target = self.modules[module].import_bindings.get(name)
        if target is not None:
            return self._resolve_class_ref(f"d:{target}", module, hops + 1)
        return None

    def _ctor_entry(self, cls: ClassEntry) -> FunctionEntry:
        """The function entry standing for ``Class(...)``.

        When the class defines ``__init__`` its real entry is returned
        (parameters already exclude ``self``, and its effects live in
        the effect tables).  Dataclasses get a synthetic entry carrying
        the field signature.
        """
        init = self.functions.get(
            f"{cls.module.dotted()}.{cls.info.name}.__init__"
        )
        if init is not None:
            return init
        info = FunctionInfo(
            qualname=cls.info.name, name=cls.info.name,
            lineno=cls.info.lineno, col=1,
            pos_params=list(cls.info.ctor_pos_params),
            kw_units=dict(cls.info.ctor_kw_units),
            is_public=not cls.info.name.startswith("_"),
        )
        return FunctionEntry(info=info, module=cls.module)

    # -- return-unit inference ---------------------------------------------

    def _infer_return_units(self) -> None:
        units: Dict[str, Optional[str]] = {}
        for full, entry in self.functions.items():
            units[full] = entry.info.name_unit
        changed = True
        passes = 0
        while changed and passes < 20:
            changed = False
            passes += 1
            for full, entry in self.functions.items():
                if units[full] is not None or not entry.info.return_descs:
                    continue
                inferred = self._returns_unit(entry, units)
                if inferred is not None:
                    units[full] = inferred
                    changed = True
        self.return_units = units

    def _returns_unit(
        self, entry: FunctionEntry, units: Dict[str, Optional[str]]
    ) -> Optional[str]:
        seen: Set[str] = set()
        for desc in entry.info.return_descs:
            if desc.startswith("u:"):
                seen.add(desc[2:])
            elif desc.startswith("c:"):
                callee = self.resolve(desc[2:], entry.module.dotted())
                unit = units.get(callee.full) if callee else None
                if unit is None:
                    return None
                seen.add(unit)
            else:
                return None
        if len(seen) == 1:
            return next(iter(seen))
        return None

    def call_return_unit(
        self, ref: Optional[str], from_module: str
    ) -> Optional[str]:
        """Return unit of the function a resolution key names, if known."""
        if ref is None:
            return None
        callee = self.resolve(ref, from_module)
        if callee is None:
            return None
        return self.return_units.get(callee.full)

    # -- effect propagation ------------------------------------------------

    def _propagate_effects(self) -> None:
        effects: Dict[str, Dict[str, EffectPath]] = {}
        for full, entry in self.functions.items():
            table: Dict[str, EffectPath] = {}
            for effect in entry.info.effects:
                table[effect.dotted] = EffectPath(
                    kind=effect.kind, dotted=effect.dotted,
                    via=None, direct_in=full,
                )
            effects[full] = table
        # Resolve each function's call edges once, then iterate to fixpoint.
        edges: Dict[str, List[str]] = {}
        for full, entry in self.functions.items():
            targets: List[str] = []
            for call in entry.info.calls:
                callee = self.resolve(call.ref, entry.module.dotted())
                if callee is not None and callee.full in effects:
                    targets.append(callee.full)
            edges[full] = targets
        changed = True
        while changed:
            changed = False
            for full, targets in edges.items():
                table = effects[full]
                for target in targets:
                    for dotted, path in effects[target].items():
                        if dotted not in table:
                            table[dotted] = EffectPath(
                                kind=path.kind, dotted=dotted,
                                via=target, direct_in=path.direct_in,
                            )
                            changed = True
        self.effects = effects

    def effect_chain(self, full: str, dotted: str) -> List[str]:
        """Witness chain of full names from ``full`` to the direct call."""
        chain = [full]
        current = full
        for _ in range(len(self.functions) + 1):
            path = self.effects.get(current, {}).get(dotted)
            if path is None or path.via is None:
                break
            chain.append(path.via)
            current = path.via
        return chain

    # -- references (COR005) -----------------------------------------------

    def referenced_names(self) -> FrozenSet[str]:
        """Names referenced anywhere in the analysed modules or tests."""
        names: Set[str] = set(self.test_references)
        for summary in self.summaries:
            names |= summary.referenced
        return frozenset(names)

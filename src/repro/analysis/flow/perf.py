"""Hot-path performance and parallel-readiness rules.

PERF001–PERF004 surface per-iteration costs (allocation churn, string
construction, repeated deep lookups, append-only loops), but *only*
inside the hot closure (:mod:`repro.analysis.flow.hot`): the same code
in a report formatter is not worth a diagnostic.  Every finding names
its witness chain back to a hot root, so the reader can see why the
function is considered hot, and carries the root as its baseline
endpoint — if the code stops being reachable from the inner loop, the
baseline entry goes stale as it should.

CONC001–CONC003 are the static contract for the future per-server
shard split (ROADMAP #1): module-level mutable state written by hot
code, class attributes shared across instances, and process-global
caches/counters all break the moment the event loop forks into worker
processes.  The PR 3 datagram-counter bug was exactly the CONC003
shape, found by hand; these rules find the next one mechanically.

OBS003 polices the telemetry data plane itself: hot-closure code must
emit through the ring-buffer sink (``telemetry.emit`` /
``telemetry.count``), never by appending to the TraceLog or resolving a
metric from the registry per event — those are exactly the per-event
costs the ring batches away.  Like the PERF rules it only fires inside
the hot closure; a direct ``trace.emit`` in a report formatter or a
test helper is fine.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.engine import Finding, ProjectRule
from repro.analysis.flow.hot import SHARD_PACKAGES, chain_label, hot_closure
from repro.analysis.rules import register_project


class _HotSiteRule(ProjectRule):
    """Shared driver: one PERF rule per :class:`PerfSite` kind."""

    kind = ""
    advice = ""
    label = ""

    def run(self) -> List[Finding]:
        """Every matching site inside every hot function."""
        project = self.project
        closure = hot_closure(project)
        for full in sorted(closure):
            entry = project.functions[full]
            chain = closure[full]
            root = project.functions[chain[0]]
            for site in entry.info.perf_sites:
                if site.kind != self.kind:
                    continue
                self.report(
                    path=entry.module.path,
                    lineno=site.lineno,
                    col=site.col,
                    message=(
                        f"{self.label.format(detail=site.detail)} in hot "
                        f"function '{entry.display}' ({chain_label(chain)}); "
                        f"{self.advice}"
                    ),
                    endpoint=root.endpoint() if len(chain) > 1 else "",
                )
        return self.findings


@register_project
class AllocationChurnRule(_HotSiteRule):
    """Flag containers built per iteration inside hot loops."""

    rule_id = "PERF001"
    summary = (
        "no per-iteration container construction (displays, "
        "comprehensions, list()/dict()/set() calls) inside a loop of a "
        "hot-closure function"
    )
    kind = "alloc"
    label = "{detail} built every loop iteration"
    advice = "hoist it out of the loop or preallocate"


@register_project
class StringChurnRule(_HotSiteRule):
    """Flag strings formatted per iteration inside hot loops."""

    rule_id = "PERF002"
    summary = (
        "no per-iteration string construction (f-strings, str.format, "
        "%-formatting) inside a loop of a hot-closure function"
    )
    kind = "format"
    label = "{detail} evaluated every loop iteration"
    advice = "precompute the string or move the formatting off the hot path"


@register_project
class RepeatedLookupRule(_HotSiteRule):
    """Flag deep attribute/key chains re-resolved within one hot loop."""

    rule_id = "PERF003"
    summary = (
        "no deep attribute/key lookup chain repeated 3+ times within "
        "one loop of a hot-closure function"
    )
    kind = "lookup"
    label = "repeated lookup {detail}"
    advice = "bind it to a local before the loop"


@register_project
class AppendLoopRule(_HotSiteRule):
    """Flag append-only loops in hot code (comprehension/numpy shape)."""

    rule_id = "PERF004"
    summary = (
        "no loop whose whole body is one list.append in a hot-closure "
        "function; a comprehension or numpy batch operation does the "
        "same without per-item bytecode"
    )
    kind = "append"
    label = "append-only loop filling {detail}"
    advice = "use a comprehension or a numpy batch operation"


@register_project
class DirectEmissionRule(ProjectRule):
    """Flag telemetry emission bypassing the ring sink in hot code."""

    rule_id = "OBS003"
    summary = (
        "no direct TraceLog append (trace.emit/trace.append) or "
        "per-event registry resolution (metrics.counter/gauge/"
        "histogram) in a hot-closure function; route emission through "
        "the ring-buffer sink via telemetry.emit / telemetry.count"
    )

    #: Human label per obs-site kind recorded by the summarizer.
    _LABELS = {
        "emit": "direct TraceLog write {detail}",
        "registry": "per-event metric registry resolution {detail}",
    }

    _ADVICE = {
        "emit": (
            "batch it through the ring sink: telemetry.emit(...) "
            "stages the record and flushes in bulk"
        ),
        "registry": (
            "hoist the instrument to __init__ or use "
            "telemetry.count(name), which accumulates deltas in the "
            "ring and applies them at flush"
        ),
    }

    def run(self) -> List[Finding]:
        """Every obs site inside every hot function, with witness chain."""
        project = self.project
        closure = hot_closure(project)
        for full in sorted(closure):
            entry = project.functions[full]
            chain = closure[full]
            root = project.functions[chain[0]]
            for site in entry.info.obs_sites:
                self.report(
                    path=entry.module.path,
                    lineno=site.lineno,
                    col=site.col,
                    message=(
                        f"{self._LABELS[site.kind].format(detail=site.detail)}"
                        f" in hot function '{entry.display}' "
                        f"({chain_label(chain)}); {self._ADVICE[site.kind]}"
                    ),
                    endpoint=root.endpoint() if len(chain) > 1 else "",
                )
        return self.findings


@register_project
class SharedGlobalMutationRule(ProjectRule):
    """Flag module-level mutables written by hot-closure code."""

    rule_id = "CONC001"
    summary = (
        "no module-level mutable container mutated by a hot-closure "
        "function; per-shard state must live on an instance "
        "(ROADMAP #1)"
    )

    def run(self) -> List[Finding]:
        """Every (module global, hot mutator) pair, anchored at the global."""
        project = self.project
        closure = hot_closure(project)
        for full in sorted(closure):
            entry = project.functions[full]
            table = {
                g.name: g
                for g in entry.module.module_globals
                if g.kind == "mutable"
            }
            reported = set()
            for mutation in entry.info.mutations:
                if mutation.scope != "global":
                    continue
                target = table.get(mutation.name)
                if target is None or mutation.name in reported:
                    continue
                reported.add(mutation.name)
                self.report(
                    path=entry.module.path,
                    lineno=target.lineno,
                    col=target.col,
                    message=(
                        f"module-level mutable '{mutation.name}' is "
                        f"written ({mutation.how}) by hot function "
                        f"'{entry.display}' "
                        f"({chain_label(closure[full])}); process-wide "
                        "state breaks the per-server shard split — move "
                        "it onto an instance"
                    ),
                    endpoint=entry.endpoint(),
                )
        return self.findings


@register_project
class ClassAttrMutationRule(ProjectRule):
    """Flag cross-instance class-attribute writes in sim-reachable code."""

    rule_id = "CONC002"
    summary = (
        "no mutating a class-level mutable through self, and no runtime "
        "writes to class attributes, in hot-closure or shard-package "
        "code: every instance shares that state"
    )

    def run(self) -> List[Finding]:
        """Every class-scope mutation in a policed method."""
        project = self.project
        closure = hot_closure(project)
        for full in sorted(project.functions):
            entry = project.functions[full]
            info = entry.info
            if not info.is_method:
                continue
            if full not in closure and (
                entry.module.package not in SHARD_PACKAGES
            ):
                continue
            mutable_attrs = self._mutable_attrs(entry)
            for mutation in info.mutations:
                if mutation.scope != "class":
                    continue
                attr = mutation.name.rpartition(".")[2]
                if mutation.how == "mutate":
                    if attr not in mutable_attrs:
                        continue  # plain instance attribute: private state
                    message = (
                        f"'{entry.display}' mutates class-level mutable "
                        f"'{mutation.name}' through self; every instance "
                        "shares one object — initialize it per instance "
                        "in __init__"
                    )
                else:
                    message = (
                        f"'{entry.display}' writes class attribute "
                        f"'{mutation.name}' at runtime; cross-instance "
                        "state breaks the per-server shard split — store "
                        "it on the instance"
                    )
                self.report(
                    path=entry.module.path,
                    lineno=mutation.lineno,
                    col=mutation.col,
                    message=message,
                    endpoint=f"{entry.module.path}::{mutation.name}",
                )
        return self.findings

    def _mutable_attrs(self, entry) -> Dict[str, int]:
        cls = self.project.classes.get(
            f"{entry.module.dotted()}.{entry.class_name}"
        )
        return cls.info.mutable_class_attrs if cls is not None else {}


@register_project
class NonReentrantStateRule(ProjectRule):
    """Flag process-global caches and counters in sim-reachable code."""

    rule_id = "CONC003"
    summary = (
        "no functools caches on hot-closure functions and no "
        "module-level itertools.count in shard packages: both are "
        "process-global and leak across runs and shards"
    )

    def run(self) -> List[Finding]:
        """Memo-cached hot functions, then shared counters per module."""
        project = self.project
        closure = hot_closure(project)
        for full in sorted(closure):
            entry = project.functions[full]
            if entry.info.cache_decorator_lineno is None:
                continue
            self.report(
                path=entry.module.path,
                lineno=entry.info.cache_decorator_lineno,
                col=entry.info.col,
                message=(
                    f"hot function '{entry.display}' is memoized with a "
                    f"functools cache ({chain_label(closure[full])}); a "
                    "process-wide cache is shared across shards and "
                    "survives run boundaries — use per-instance state"
                ),
            )
        for summary in project.summaries:
            if summary.package not in SHARD_PACKAGES:
                continue
            for module_global in summary.module_globals:
                if module_global.kind != "counter":
                    continue
                self.report(
                    path=summary.path,
                    lineno=module_global.lineno,
                    col=module_global.col,
                    message=(
                        f"module-level itertools.count "
                        f"'{module_global.name}' in simulation code is a "
                        "process-global sequence; values leak across "
                        "runs and shards — allocate from per-run state "
                        "(e.g. Simulator.datagram_ids)"
                    ),
                )
        return self.findings

"""Per-function control-flow graphs for the CFG-dataflow phase.

:func:`build_cfg` lowers one ``ast.FunctionDef`` into a graph of
:class:`Block` nodes holding *items* — the function's simple statements
in execution order, plus synthesized ``ast.Expr`` wrappers for branch
and loop test expressions (so expression-level rules see them exactly
once per evaluation point) and :class:`WithExit` markers where a
``with`` block releases its context managers.

Structured control flow is lowered the way the solver wants to consume
it, not the way the grammar spells it:

* ``if``/``while``/``for`` produce ``true``/``false`` edges; when the
  test is a simple None/truthiness check on a local name the edges
  carry a :class:`Guard`, which is what gives the dataflow phase its
  path sensitivity (``if span is not None: span.end()`` does not leak
  on the else edge — the handle *is* None there).
* ``for``/``while`` ``else`` clauses hang off the not-taken edge, so a
  ``break`` provably skips them.
* ``try``/``except``/``finally`` is modelled conservatively: control
  may transfer to a matching handler from every statement boundary in
  the ``try`` body, and the ``finally`` suite is *inlined* once per
  distinct continuation (normal fall-through, return, break, continue,
  unhandled exception), which is what makes ``return`` inside a
  ``finally`` override the in-flight jump — exactly as the interpreter
  behaves.
* ``match`` produces one edge per case plus a fall-through edge unless
  some case is irrefutable.
* ``return`` and ``raise`` route to the single exit block through every
  enclosing ``finally``; the exit-bound edge kind (``return``/``fall``/
  ``raise``) tells typestate rules which kind of path leaks a resource.

Generators (any ``yield`` in the function's own body) and ``async``
functions suspend mid-flight in ways a static CFG of this shape cannot
honestly describe, so :func:`build_cfg` raises :class:`CfgUnsupported`
and the rules built on top skip such functions gracefully.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "Block",
    "CFG",
    "CaseBind",
    "CfgUnsupported",
    "Edge",
    "ExceptBind",
    "ForBind",
    "Guard",
    "WithEnter",
    "WithExit",
    "build_cfg",
    "function_cfgs",
]


class CfgUnsupported(Exception):
    """The function's control flow is out of scope (generator/async)."""


@dataclass(frozen=True)
class Guard:
    """A fact about a local name that holds along one branch edge."""

    name: str
    truthy: bool    # True: name is truthy/non-None on this edge


@dataclass(frozen=True)
class Edge:
    """One directed control-flow edge."""

    src: int
    dst: int
    kind: str                     # flow|true|false|case|loop|return|raise|except
    guard: Optional[Guard] = None


class WithEnter:
    """Pseudo-item marking where a ``with`` acquires its managers.

    Rules should consume ``node.items`` (the withitems: context
    expressions and ``as`` bindings) and must not walk ``node.body`` —
    the body's statements appear as ordinary items of their own.
    """

    __slots__ = ("node",)

    def __init__(self, node: ast.With) -> None:
        self.node = node


class WithExit:
    """Pseudo-item marking where a ``with`` releases its managers."""

    __slots__ = ("node",)

    def __init__(self, node: ast.With) -> None:
        self.node = node


class ForBind:
    """Pseudo-item: the per-iteration target binding of a ``for`` loop.

    The loop's iterable expression is evaluated once before the header
    and appears as its own expression item; rules should consume only
    ``node.target`` here.
    """

    __slots__ = ("node",)

    def __init__(self, node: ast.For) -> None:
        self.node = node


class ExceptBind:
    """Pseudo-item: entry into one ``except`` handler (name binding)."""

    __slots__ = ("node",)

    def __init__(self, node: ast.ExceptHandler) -> None:
        self.node = node


class CaseBind:
    """Pseudo-item: the pattern bindings of one ``match`` case arm."""

    __slots__ = ("node",)

    def __init__(self, node: ast.match_case) -> None:
        self.node = node


@dataclass
class Block:
    """A straight-line run of items with a single entry point."""

    id: int
    items: List[object] = field(default_factory=list)


@dataclass
class CFG:
    """One function's control-flow graph.

    ``entry`` has no items of its own; ``exit_id`` is the unique sink —
    every ``return``, fall-off-the-end, and unhandled explicit ``raise``
    reaches it, each via an edge whose kind says which.
    """

    blocks: List[Block]
    edges: List[Edge]
    entry: int
    exit_id: int

    def successors(self, block_id: int) -> List[Edge]:
        """Edges leaving ``block_id``."""
        return [e for e in self.edges if e.src == block_id]

    def predecessors(self, block_id: int) -> List[Edge]:
        """Edges entering ``block_id``."""
        return [e for e in self.edges if e.dst == block_id]

    def exit_edges(self) -> List[Edge]:
        """Edges into the exit block (the function's leave points)."""
        return self.predecessors(self.exit_id)


def _contains_yield(node: ast.AST) -> bool:
    """Whether the function's *own* body yields (nested defs excluded)."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
        if _contains_yield(child):
            return True
    return False


def _expr_item(expr: ast.expr) -> ast.Expr:
    """Wrap a bare test expression as a statement-shaped item."""
    item = ast.Expr(value=expr)
    ast.copy_location(item, expr)
    return item


def _test_guards(test: ast.expr) -> Tuple[Optional[Guard], Optional[Guard]]:
    """(true-edge, false-edge) guards for simple None/truthiness tests."""
    negated = False
    while isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        test = test.operand
        negated = not negated
    name: Optional[str] = None
    truthy_on_true = True
    if isinstance(test, ast.Name):
        name = test.id
    elif (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.left, ast.Name)
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        name = test.left.id
        if isinstance(test.ops[0], ast.Is):
            truthy_on_true = False       # "x is None" true => x falsy
        elif not isinstance(test.ops[0], ast.IsNot):
            name = None
    if name is None:
        return None, None
    if negated:
        truthy_on_true = not truthy_on_true
    return (
        Guard(name, truthy_on_true),
        Guard(name, not truthy_on_true),
    )


def _is_irrefutable(case: ast.match_case) -> bool:
    """Whether the case always matches (wildcard/capture, no guard)."""
    if case.guard is not None:
        return False
    pattern = case.pattern
    return isinstance(pattern, ast.MatchAs) and pattern.pattern is None


#: A loop context: (continue target block, break patch list, finally depth).
class _Loop:
    __slots__ = ("continue_to", "breaks", "finally_depth")

    def __init__(self, continue_to: int, finally_depth: int) -> None:
        self.continue_to = continue_to
        self.breaks: List[int] = []          # blocks awaiting the loop exit
        self.finally_depth = finally_depth


class _Builder:
    def __init__(self) -> None:
        self.blocks: List[Block] = [Block(0)]
        self.edges: List[Edge] = []
        self.exit_id = self._new_block()
        self.cur: Optional[int] = 0           # None while unreachable
        self.loops: List[_Loop] = []
        #: Innermost-last ``finally`` suites control must run through on
        #: any jump out of their ``try``.
        self.finallys: List[ast.Try] = []
        #: Innermost-last handler targets: (handler entry ids, finally
        #: depth at the time the try was entered, exceptional-finally
        #: entry or None).
        self.handlers: List[Tuple[List[int], int, Optional[int]]] = []

    # -- low-level graph assembly ------------------------------------------

    def _new_block(self) -> int:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block.id

    def _edge(self, src: int, dst: int, kind: str,
              guard: Optional[Guard] = None) -> None:
        self.edges.append(Edge(src, dst, kind, guard))

    def _append(self, item: object) -> None:
        if self.cur is not None:
            self.blocks[self.cur].items.append(item)

    def _start_block(self, preds: Sequence[Tuple[int, str, Optional[Guard]]]) -> None:
        """Open a fresh current block fed by ``preds`` (may be empty)."""
        block = self._new_block()
        for src, kind, guard in preds:
            self._edge(src, block, kind, guard)
        self.cur = block if preds else None

    # -- finally inlining ---------------------------------------------------

    def _run_finallys(self, down_to: int) -> bool:
        """Inline every ``finally`` suite above depth ``down_to``.

        Pops suites as it inlines them (callers save and restore
        ``self.finallys`` around the call).  Returns False when some
        inlined suite hijacked control (its own ``return``/``raise``/
        ``break`` left no fall-through), in which case the caller's
        jump must not complete.
        """
        while len(self.finallys) > down_to:
            suite = self.finallys.pop()
            for stmt in suite.finalbody:
                self._stmt(stmt)
            if self.cur is None:
                return False
        return True

    def _jump(self, dst: int, kind: str, finally_depth: int = 0) -> None:
        """Leave the current position for ``dst`` through finallys."""
        if self.cur is None:
            return
        saved = self.finallys[:]
        completed = self._run_finallys(finally_depth)
        self.finallys = saved
        if completed and self.cur is not None:
            self._edge(self.cur, dst, kind)
        self.cur = None

    # -- statement dispatch -------------------------------------------------

    def build(self, func: ast.FunctionDef) -> CFG:
        for stmt in func.body:
            self._stmt(stmt)
        if self.cur is not None:
            self._jump(self.exit_id, "fall")
        return CFG(
            blocks=self.blocks, edges=self.edges,
            entry=0, exit_id=self.exit_id,
        )

    def _stmt(self, stmt: ast.stmt) -> None:
        if self.cur is None:
            return  # unreachable code contributes nothing
        self._pre_statement_exception_edges()
        if self.cur is None:  # pragma: no cover - defensive
            return
        if isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, ast.While):
            self._while(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            if isinstance(stmt, ast.AsyncFor):
                raise CfgUnsupported("async for")
            self._for(stmt)
        elif isinstance(stmt, ast.Try):
            self._try(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            if isinstance(stmt, ast.AsyncWith):
                raise CfgUnsupported("async with")
            self._with(stmt)
        elif isinstance(stmt, ast.Match):
            self._match(stmt)
        elif isinstance(stmt, ast.Return):
            self._append(stmt)
            self._jump(self.exit_id, "return")
        elif isinstance(stmt, ast.Raise):
            self._append(stmt)
            self._raise()
        elif isinstance(stmt, ast.Break):
            loop = self.loops[-1] if self.loops else None
            if loop is None:
                return
            if self.cur is not None:
                saved = self.finallys[:]
                completed = self._run_finallys(loop.finally_depth)
                self.finallys = saved
                if completed and self.cur is not None:
                    loop.breaks.append(self.cur)
                self.cur = None
        elif isinstance(stmt, ast.Continue):
            loop = self.loops[-1] if self.loops else None
            if loop is None:
                return
            self._jump(loop.continue_to, "loop", loop.finally_depth)
        else:
            self._append(stmt)

    def _pre_statement_exception_edges(self) -> None:
        """Conservative handler edges at a try-body statement boundary.

        The dataflow state *before* each protected statement may reach
        the handlers (the statement can raise part-way), so the current
        block is closed here and a fresh one opened — the closed
        block's out-state is exactly that boundary state.
        """
        if not self.handlers or self.cur is None:
            return
        handler_ids, _, exc_finally = self.handlers[-1]
        src = self.cur
        for hid in handler_ids:
            self._edge(src, hid, "except")
        if exc_finally is not None:
            self._edge(src, exc_finally, "except")
        self._start_block([(src, "flow", None)])

    def _raise(self) -> None:
        """An explicit raise: to the innermost handlers, else the exit."""
        if self.cur is None:
            return
        if self.handlers:
            handler_ids, _, exc_finally = self.handlers[-1]
            for hid in handler_ids:
                self._edge(self.cur, hid, "except")
            if exc_finally is not None:
                self._edge(self.cur, exc_finally, "except")
            if handler_ids or exc_finally is not None:
                self.cur = None
                return
        self._jump(self.exit_id, "raise")

    # -- structured statements ---------------------------------------------

    def _if(self, stmt: ast.If) -> None:
        self._append(_expr_item(stmt.test))
        head = self.cur
        assert head is not None
        true_guard, false_guard = _test_guards(stmt.test)
        joins: List[Tuple[int, str, Optional[Guard]]] = []
        self._start_block([(head, "true", true_guard)])
        for s in stmt.body:
            self._stmt(s)
        if self.cur is not None:
            joins.append((self.cur, "flow", None))
        if stmt.orelse:
            self._start_block([(head, "false", false_guard)])
            for s in stmt.orelse:
                self._stmt(s)
            if self.cur is not None:
                joins.append((self.cur, "flow", None))
        else:
            joins.append((head, "false", false_guard))
        self._start_block(joins)

    def _while(self, stmt: ast.While) -> None:
        head_preds = [(self.cur, "flow", None)] if self.cur is not None else []
        self._start_block(head_preds)  # loop header
        head = self.cur
        if head is None:  # pragma: no cover - guarded by _stmt
            return
        self._append(_expr_item(stmt.test))
        true_guard, false_guard = _test_guards(stmt.test)
        always_true = (
            isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
        )
        loop = _Loop(head, len(self.finallys))
        self.loops.append(loop)
        self._start_block([(head, "true", true_guard)])
        for s in stmt.body:
            self._stmt(s)
        self._jump(head, "loop")
        self.loops.pop()
        # Normal (test-false) exit runs the else suite; breaks skip it.
        after_preds: List[Tuple[int, str, Optional[Guard]]] = []
        if not always_true:
            self._start_block([(head, "false", false_guard)])
            for s in stmt.orelse:
                self._stmt(s)
            if self.cur is not None:
                after_preds.append((self.cur, "flow", None))
        after_preds.extend((b, "flow", None) for b in loop.breaks)
        self._start_block(after_preds)

    def _for(self, stmt: ast.For) -> None:
        self._append(_expr_item(stmt.iter))
        head_preds = [(self.cur, "flow", None)] if self.cur is not None else []
        self._start_block(head_preds)  # loop header: next-element fetch
        head = self.cur
        if head is None:  # pragma: no cover - guarded by _stmt
            return
        self._append(ForBind(stmt))  # per-iteration target binding
        loop = _Loop(head, len(self.finallys))
        self.loops.append(loop)
        self._start_block([(head, "true", None)])
        for s in stmt.body:
            self._stmt(s)
        self._jump(head, "loop")
        self.loops.pop()
        after_preds: List[Tuple[int, str, Optional[Guard]]] = []
        self._start_block([(head, "false", None)])  # iterator exhausted
        for s in stmt.orelse:
            self._stmt(s)
        if self.cur is not None:
            after_preds.append((self.cur, "flow", None))
        after_preds.extend((b, "flow", None) for b in loop.breaks)
        self._start_block(after_preds)

    def _with(self, stmt: ast.With) -> None:
        self._append(WithEnter(stmt))  # manager acquisition + as-bindings
        for s in stmt.body:
            self._stmt(s)
        self._append(WithExit(stmt))

    def _match(self, stmt: ast.Match) -> None:
        self._append(_expr_item(stmt.subject))
        head = self.cur
        assert head is not None
        joins: List[Tuple[int, str, Optional[Guard]]] = []
        saw_irrefutable = False
        for case in stmt.cases:
            self._start_block([(head, "case", None)])
            self._append(CaseBind(case))  # pattern bindings for this arm
            if case.guard is not None:
                self._append(_expr_item(case.guard))
            for s in case.body:
                self._stmt(s)
            if self.cur is not None:
                joins.append((self.cur, "flow", None))
            if _is_irrefutable(case):
                saw_irrefutable = True
        if not saw_irrefutable:
            joins.append((head, "false", None))
        self._start_block(joins)

    def _try(self, stmt: ast.Try) -> None:
        entry = self.cur
        assert entry is not None
        has_finally = bool(stmt.finalbody)
        finally_depth = len(self.finallys)
        if has_finally:
            self.finallys.append(stmt)

        # Exceptional finally: runs when no handler matches (or there
        # are no handlers), then propagates.  Built lazily as an entry
        # block; its body is inlined after the protected region closes.
        # A catch-all handler (bare ``except:`` / ``except
        # BaseException:``) makes that path unreachable from the
        # protected body, so it is not materialised — cleanup done in a
        # catch-all handler satisfies path-sensitive rules.
        catch_all = any(
            handler.type is None
            or (isinstance(handler.type, ast.Name)
                and handler.type.id == "BaseException")
            for handler in stmt.handlers
        )
        exc_finally_entry: Optional[int] = None
        if has_finally and not catch_all:
            exc_finally_entry = self._new_block()

        handler_entries = [self._new_block() for _ in stmt.handlers]
        self.handlers.append(
            (handler_entries, finally_depth, exc_finally_entry)
        )

        # Protected body (per-statement boundary edges to handlers come
        # from _pre_statement_exception_edges while this context is on
        # the handler stack).
        body_end: Optional[int] = None
        for s in stmt.body:
            self._stmt(s)
        if self.cur is not None:
            self._pre_statement_exception_edges()
        body_end = self.cur
        self.handlers.pop()

        joins: List[Tuple[int, str, Optional[Guard]]] = []

        # else clause: runs when the body completed; its exceptions are
        # not caught by this try's handlers.
        if body_end is not None:
            self.cur = body_end
            for s in stmt.orelse:
                self._stmt(s)
            if self.cur is not None:
                if has_finally:
                    saved = self.finallys[:]
                    completed = self._run_finallys(finally_depth)
                    self.finallys = saved
                    if completed and self.cur is not None:
                        joins.append((self.cur, "flow", None))
                else:
                    joins.append((self.cur, "flow", None))
            self.cur = None

        # Handlers: body runs, then the normal finally, then after-try.
        for handler, hid in zip(stmt.handlers, handler_entries):
            self.cur = hid
            self._append(ExceptBind(handler))  # exception-name binding
            for s in handler.body:
                self._stmt(s)
            if self.cur is not None:
                if has_finally:
                    saved = self.finallys[:]
                    completed = self._run_finallys(finally_depth)
                    self.finallys = saved
                    if completed and self.cur is not None:
                        joins.append((self.cur, "flow", None))
                else:
                    joins.append((self.cur, "flow", None))
            self.cur = None

        if has_finally:
            self.finallys.pop()
            # Exceptional finally body: inline once; afterwards the
            # exception propagates outwards (handlers of an outer try,
            # or the function exit).
            if exc_finally_entry is not None:
                self.cur = exc_finally_entry
                for s in stmt.finalbody:
                    self._stmt(s)
                if self.cur is not None:
                    self._raise()

        self._start_block(joins)


def build_cfg(func: ast.FunctionDef) -> CFG:
    """Lower one function body to a CFG.

    Raises:
        CfgUnsupported: for async functions and generators.
    """
    if isinstance(func, ast.AsyncFunctionDef):
        raise CfgUnsupported("async function")
    if not isinstance(func, ast.FunctionDef):
        raise CfgUnsupported(type(func).__name__)
    if _contains_yield(func):
        raise CfgUnsupported("generator")
    return _Builder().build(func)


def function_cfgs(
    tree: ast.AST,
) -> List[Tuple[ast.FunctionDef, str, Optional[CFG]]]:
    """(node, qualname, cfg-or-None) for every def in ``tree``.

    Nested and method definitions are yielded as their own entries;
    unsupported functions (async/generator) carry ``None`` so callers
    can skip them gracefully.  Results are ordered by source position.
    """
    out: List[Tuple[ast.FunctionDef, str, Optional[CFG]]] = []

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                try:
                    cfg: Optional[CFG] = build_cfg(child)
                except CfgUnsupported:
                    cfg = None
                out.append((child, qual, cfg))
                walk(child, f"{qual}.<locals>.")
            elif isinstance(child, ast.ClassDef):
                walk(child, f"{prefix}{child.name}.")
            else:
                walk(child, prefix)

    walk(tree, "")
    out.sort(key=lambda item: (item[0].lineno, item[0].col_offset))
    return out

"""Interprocedural rules: UNIT004, UNIT005, DET004, COR005.

These run in the engine's second phase over a :class:`Project` built
from every analysed module, so they see across function and module
boundaries: a ``_ms`` value flowing into a ``_s`` parameter two modules
away, a wall-clock call hidden behind a helper outside the simulation
packages, a public function nothing calls.

Cross-file findings carry an *endpoint* (``path::qualname`` of the
other end) that participates in the baseline fingerprint, so renaming
or moving either end invalidates the baseline entry as it should.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.engine import Finding, ProjectRule
from repro.analysis.flow.project import FunctionEntry
from repro.analysis.flow.summary import MODULE_BODY
from repro.analysis.rules import register_project
from repro.analysis.rules.determinism import SIMULATION_PACKAGES

#: Module-level functions never flagged as dead: external entry points.
_ENTRYPOINT_NAMES = frozenset({"main"})


def _in_det_scope(entry: FunctionEntry) -> bool:
    """Whether DET004 polices this function's body."""
    if entry.module.package in SIMULATION_PACKAGES:
        return True
    return entry.module.module[:1] == ("tests",)


@register_project
class CallSiteUnitRule(ProjectRule):
    """Flag call arguments whose declared unit contradicts the parameter."""

    rule_id = "UNIT004"
    summary = (
        "no passing a quantity declared in one unit (_s/_ms/_us/_ns "
        "suffix) into a parameter declared in another, across any call "
        "in the analysed tree"
    )

    def run(self) -> List[Finding]:
        """Every resolvable call edge, argument by argument."""
        project = self.project
        for caller in project.functions.values():
            module = caller.module.dotted()
            for call in caller.info.calls:
                callee = project.resolve(call.ref, module)
                if callee is None:
                    continue
                # Unbound ``Class.method(obj, ...)`` reached through a
                # dotted path maps positions uncertainly (no ``self``
                # in the recorded signature): keyword args only.
                positional_ok = not (
                    callee.info.is_method and call.ref.startswith("d:")
                )
                for arg in call.args:
                    arg_unit = arg.unit
                    if arg_unit is None:
                        arg_unit = project.call_return_unit(
                            arg.call_ref, module
                        )
                    if arg_unit is None:
                        continue
                    param_name, param_unit = self._parameter(
                        callee, arg.position, arg.keyword, positional_ok
                    )
                    if param_unit is None or param_unit == arg_unit:
                        continue
                    self.report(
                        path=caller.module.path,
                        lineno=call.lineno,
                        col=call.col,
                        message=(
                            f"argument '{arg.display}' to "
                            f"{callee.display}() is declared "
                            f"'{arg_unit}' but parameter "
                            f"'{param_name}' is declared '{param_unit}'"
                        ),
                        endpoint=callee.endpoint(),
                    )
        return self.findings

    @staticmethod
    def _parameter(
        callee: FunctionEntry,
        position: Optional[int],
        keyword: Optional[str],
        positional_ok: bool,
    ):
        info = callee.info
        if keyword is not None:
            return keyword, info.kw_units.get(keyword)
        if position is not None and positional_ok:
            if position < len(info.pos_params):
                return info.pos_params[position]
        return None, None


@register_project
class ReturnUnitRule(ProjectRule):
    """Flag assigning a call result to a name declaring a different unit."""

    rule_id = "UNIT005"
    summary = (
        "no assigning a call whose inferred return unit is one "
        "_s/_ms/_us/_ns unit to a name whose suffix declares another"
    )

    def run(self) -> List[Finding]:
        """Every recorded assignment-from-call site."""
        project = self.project
        for summary in project.summaries:
            module = summary.dotted()
            for assign in summary.assigns:
                callee = project.resolve(assign.ref, module)
                if callee is None:
                    continue
                returned = project.return_units.get(callee.full)
                if returned is None or returned == assign.unit:
                    continue
                self.report(
                    path=summary.path,
                    lineno=assign.lineno,
                    col=assign.col,
                    message=(
                        f"assignment target '{assign.target}' is declared "
                        f"'{assign.unit}' but {callee.display}() returns "
                        f"'{returned}'"
                    ),
                    endpoint=callee.endpoint(),
                )
        return self.findings


@register_project
class TransitiveEffectRule(ProjectRule):
    """Flag simulation code that reaches host time / global RNG via calls."""

    rule_id = "DET004"
    summary = (
        "no simulation-package (or tests) function may transitively "
        "reach a wall-clock or global-RNG call through helpers, even "
        "ones outside the simulation packages"
    )

    _KIND_LABEL = {
        "wall-clock": "wall-clock call",
        "stdlib-random": "stdlib random call",
        "numpy-global-rng": "numpy global-RNG call",
    }

    def run(self) -> List[Finding]:
        """Every call edge out of a policed function."""
        project = self.project
        for caller in project.functions.values():
            if not _in_det_scope(caller):
                continue
            module = caller.module.dotted()
            for call in caller.info.calls:
                callee = project.resolve(call.ref, module)
                if callee is None or callee.full not in project.effects:
                    continue
                if not self._is_boundary(callee):
                    continue
                for dotted, path in sorted(
                    project.effects[callee.full].items()
                ):
                    chain = [callee.full] + project.effect_chain(
                        callee.full, dotted
                    )[1:]
                    direct = project.functions.get(path.direct_in)
                    endpoint = direct.endpoint() if direct else ""
                    via = " -> ".join(chain)
                    self.report(
                        path=caller.module.path,
                        lineno=call.lineno,
                        col=call.col,
                        message=(
                            f"'{caller.display}' transitively reaches "
                            f"{self._KIND_LABEL[path.kind]} {dotted}() "
                            f"via {via}; simulated code must stay "
                            "deterministic"
                        ),
                        endpoint=endpoint,
                    )
        return self.findings

    def _is_boundary(self, callee: FunctionEntry) -> bool:
        """Report at the edge where the effect enters the caller's scope.

        Either the callee performs the effect itself, or the callee
        lives outside the policed packages and carries the effect
        transitively.  Edges to effect-free in-scope callees are not
        reported — the callee's own call sites are, so each chain
        yields exactly one finding at the crossing.
        """
        if callee.info.effects:
            return True
        if _in_det_scope(callee):
            return False
        return bool(self.project.effects.get(callee.full))


@register_project
class DeadPublicFunctionRule(ProjectRule):
    """Flag public module-level functions nothing calls or tests."""

    rule_id = "COR005"
    summary = (
        "no dead public API: a module-level public function that is "
        "never referenced in the analysed tree, scripts, or tests "
        "should be removed or exercised"
    )

    def run(self) -> List[Finding]:
        """Every public module-level function vs the reference set."""
        project = self.project
        referenced = project.referenced_names()
        for entry in project.functions.values():
            info = entry.info
            if (
                info.qualname == MODULE_BODY
                or info.is_method
                or not info.is_public
                or info.decorated
                or info.name in _ENTRYPOINT_NAMES
                or entry.module.module[:1] != ("repro",)
            ):
                continue
            if info.name in referenced:
                continue
            self.report(
                path=entry.module.path,
                lineno=info.lineno,
                col=info.col,
                message=(
                    f"public function '{entry.full}' is never called in "
                    "the analysed tree and never referenced by tests; "
                    "remove it or add a caller/test"
                ),
            )
        return self.findings

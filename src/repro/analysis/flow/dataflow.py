"""Generic fixpoint dataflow over :mod:`repro.analysis.flow.cfg` graphs.

An analysis is a plain object implementing the :class:`Analysis`
protocol — a lattice (``initial``/``join``/``equals``), an item
transfer function, and optionally an edge transfer (where the CFG's
branch :class:`~repro.analysis.flow.cfg.Guard` facts are applied —
this is the path-sensitive half) and a ``widen`` operator for lattices
of unbounded height (interval analysis).

:func:`solve_forward` runs the classic worklist algorithm to a
fixpoint and returns the state at entry of every reachable block;
:func:`solve_backward` is its mirror over reversed edges.  Blocks the
fixpoint never reaches are absent from the result — rules should treat
absence as "unreachable" and stay silent there.

After solving, :func:`each_item_state` replays the transfer function
through every reachable block and yields ``(block, item,
state-before-item)`` triples — the hook rules use for their single
reporting pass (reporting from inside ``transfer`` would fire once per
fixpoint iteration).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Tuple

from repro.analysis.flow.cfg import CFG, Block, Edge

__all__ = [
    "Analysis",
    "each_item_state",
    "exit_edge_states",
    "solve_backward",
    "solve_forward",
]

#: Per-block visit budget before ``widen`` replaces ``join`` (keeps
#: infinite-height lattices, e.g. intervals under a loop counter,
#: terminating).
_WIDEN_AFTER = 8

#: Hard iteration ceiling per solve — a defensive backstop only; any
#: monotone analysis with working widening converges far earlier.
_MAX_STEPS_PER_BLOCK = 64


class Analysis:
    """Base/protocol for dataflow analyses (duck-typed; subclass or copy).

    States must be immutable values (or treated as such): ``transfer``
    returns a new state rather than mutating its argument.
    """

    def initial(self) -> Any:
        """State at the function boundary (entry for forward solves)."""
        raise NotImplementedError

    def join(self, a: Any, b: Any) -> Any:
        """Least upper bound of two states."""
        raise NotImplementedError

    def equals(self, a: Any, b: Any) -> bool:
        """Whether two states are the same lattice point."""
        return bool(a == b)

    def widen(self, old: Any, new: Any) -> Any:
        """Accelerated join applied after repeated visits (default: join)."""
        return self.join(old, new)

    def transfer(self, item: Any, state: Any) -> Any:
        """State after executing one block item."""
        raise NotImplementedError

    def transfer_edge(self, edge: Edge, state: Any) -> Any:
        """Refine a state crossing ``edge`` (guards); default identity."""
        return state


def _block_out(analysis: Analysis, block: Block, state: Any) -> Any:
    for item in block.items:
        state = analysis.transfer(item, state)
    return state


def solve_forward(cfg: CFG, analysis: Analysis) -> Dict[int, Any]:
    """Entry states of every reachable block, at the least fixpoint."""
    return _solve(cfg, analysis, cfg.entry, _forward_edges(cfg))


def solve_backward(cfg: CFG, analysis: Analysis) -> Dict[int, Any]:
    """Exit-facing states per block, solving over reversed edges.

    Block items are fed to ``transfer`` in reverse order, so the
    returned mapping holds the state *after* each block for a
    liveness-style analysis.
    """
    reversed_edges: Dict[int, List[Edge]] = {}
    for edge in cfg.edges:
        reversed_edges.setdefault(edge.dst, []).append(edge)
    reversed_cfg_blocks = {b.id: Block(b.id, list(reversed(b.items)))
                           for b in cfg.blocks}

    def out_edges(block_id: int) -> List[Tuple[Edge, int]]:
        return [(e, e.src) for e in reversed_edges.get(block_id, [])]

    return _solve_generic(
        blocks=reversed_cfg_blocks, analysis=analysis,
        start=cfg.exit_id, out_edges=out_edges,
    )


def _forward_edges(cfg: CFG):
    by_src: Dict[int, List[Edge]] = {}
    for edge in cfg.edges:
        by_src.setdefault(edge.src, []).append(edge)

    def out_edges(block_id: int) -> List[Tuple[Edge, int]]:
        return [(e, e.dst) for e in by_src.get(block_id, [])]

    return out_edges


def _solve(cfg: CFG, analysis: Analysis, start: int, out_edges) -> Dict[int, Any]:
    blocks = {b.id: b for b in cfg.blocks}
    return _solve_generic(
        blocks=blocks, analysis=analysis, start=start, out_edges=out_edges,
    )


def _solve_generic(
    *, blocks: Dict[int, Block], analysis: Analysis, start: int, out_edges
) -> Dict[int, Any]:
    state_in: Dict[int, Any] = {start: analysis.initial()}
    visits: Dict[int, int] = {}
    worklist: List[int] = [start]
    budget = _MAX_STEPS_PER_BLOCK * max(len(blocks), 1)
    steps = 0
    while worklist and steps < budget:
        steps += 1
        block_id = worklist.pop(0)
        out = _block_out(analysis, blocks[block_id], state_in[block_id])
        for edge, target in out_edges(block_id):
            incoming = analysis.transfer_edge(edge, out)
            if target not in state_in:
                state_in[target] = incoming
                worklist.append(target)
                continue
            old = state_in[target]
            visits[target] = visits.get(target, 0) + 1
            if visits[target] > _WIDEN_AFTER:
                merged = analysis.widen(old, incoming)
            else:
                merged = analysis.join(old, incoming)
            if not analysis.equals(merged, old):
                state_in[target] = merged
                if target not in worklist:
                    worklist.append(target)
    return state_in


def each_item_state(
    cfg: CFG, analysis: Analysis, state_in: Dict[int, Any]
) -> Iterator[Tuple[Block, Any, Any]]:
    """Replay: yields ``(block, item, state-before-item)`` triples.

    Only reachable blocks (present in ``state_in``) are replayed, in
    block-id order — which is construction order, hence deterministic.
    """
    for block in cfg.blocks:
        if block.id not in state_in:
            continue
        state = state_in[block.id]
        for item in block.items:
            yield block, item, state
            state = analysis.transfer(item, state)


def exit_edge_states(
    cfg: CFG, analysis: Analysis, state_in: Dict[int, Any]
) -> List[Tuple[Edge, Any]]:
    """The state arriving at the exit along each reachable leave edge."""
    out: List[Tuple[Edge, Any]] = []
    blocks = {b.id: b for b in cfg.blocks}
    for edge in cfg.exit_edges():
        if edge.src not in state_in:
            continue
        state = _block_out(analysis, blocks[edge.src], state_in[edge.src])
        out.append((edge, analysis.transfer_edge(edge, state)))
    return out

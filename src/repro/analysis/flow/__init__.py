"""Whole-program flow analysis: call graph, unit inference, effects.

Phase one (:mod:`~repro.analysis.flow.summary`) reduces each parsed
module to a JSON-serializable :class:`ModuleSummary`; phase two
(:mod:`~repro.analysis.flow.project`) stitches summaries into a
:class:`Project` — the call graph plus derived return units and
transitive effect sets — that the interprocedural rules in
:mod:`~repro.analysis.flow.rules` consume.

Phase 1.5 (:mod:`~repro.analysis.flow.cfg` +
:mod:`~repro.analysis.flow.dataflow`) sits between them: per-function
control-flow graphs and a generic fixpoint solver, consumed by the
path-sensitive RES/PREC rule families.
"""

from repro.analysis.flow.cfg import (
    CFG,
    Block,
    CfgUnsupported,
    Edge,
    Guard,
    build_cfg,
    function_cfgs,
)
from repro.analysis.flow.dataflow import (
    Analysis,
    each_item_state,
    exit_edge_states,
    solve_backward,
    solve_forward,
)
from repro.analysis.flow.hot import (
    HOT_ROOTS,
    SHARD_PACKAGES,
    hot_closure,
    render_hot_report,
)
from repro.analysis.flow.project import (
    ClassEntry,
    EffectPath,
    FunctionEntry,
    Project,
)
from repro.analysis.flow.summary import (
    MODULE_BODY,
    ArgUnit,
    AssignFromCall,
    CallSite,
    ClassInfo,
    EffectSite,
    FunctionInfo,
    ModuleGlobal,
    ModuleSummary,
    MutationSite,
    PerfSite,
    summarize,
)

__all__ = [
    "Analysis",
    "ArgUnit",
    "Block",
    "CFG",
    "CfgUnsupported",
    "Edge",
    "Guard",
    "build_cfg",
    "each_item_state",
    "exit_edge_states",
    "function_cfgs",
    "solve_backward",
    "solve_forward",
    "AssignFromCall",
    "CallSite",
    "ClassEntry",
    "ClassInfo",
    "EffectPath",
    "EffectSite",
    "FunctionEntry",
    "FunctionInfo",
    "HOT_ROOTS",
    "MODULE_BODY",
    "ModuleGlobal",
    "ModuleSummary",
    "MutationSite",
    "PerfSite",
    "Project",
    "SHARD_PACKAGES",
    "hot_closure",
    "render_hot_report",
    "summarize",
]

"""Whole-program flow analysis: call graph, unit inference, effects.

Phase one (:mod:`~repro.analysis.flow.summary`) reduces each parsed
module to a JSON-serializable :class:`ModuleSummary`; phase two
(:mod:`~repro.analysis.flow.project`) stitches summaries into a
:class:`Project` — the call graph plus derived return units and
transitive effect sets — that the interprocedural rules in
:mod:`~repro.analysis.flow.rules` consume.
"""

from repro.analysis.flow.hot import (
    HOT_ROOTS,
    SHARD_PACKAGES,
    hot_closure,
    render_hot_report,
)
from repro.analysis.flow.project import (
    ClassEntry,
    EffectPath,
    FunctionEntry,
    Project,
)
from repro.analysis.flow.summary import (
    MODULE_BODY,
    ArgUnit,
    AssignFromCall,
    CallSite,
    ClassInfo,
    EffectSite,
    FunctionInfo,
    ModuleGlobal,
    ModuleSummary,
    MutationSite,
    PerfSite,
    summarize,
)

__all__ = [
    "ArgUnit",
    "AssignFromCall",
    "CallSite",
    "ClassEntry",
    "ClassInfo",
    "EffectPath",
    "EffectSite",
    "FunctionEntry",
    "FunctionInfo",
    "HOT_ROOTS",
    "MODULE_BODY",
    "ModuleGlobal",
    "ModuleSummary",
    "MutationSite",
    "PerfSite",
    "Project",
    "SHARD_PACKAGES",
    "hot_closure",
    "render_hot_report",
    "summarize",
]

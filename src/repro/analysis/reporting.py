"""Finding renderers: human lines, machine JSON, and SARIF 2.1.0."""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List

from repro.analysis.baseline import BaselineMatch
from repro.analysis.engine import (
    TOOL_VERSION,
    AnalysisResult,
    Finding,
    fingerprint_findings,
)

#: partialFingerprints key: bump the suffix with the baseline version.
_FINGERPRINT_KEY = "reproLintFingerprint/v2"


def _partial_fingerprints(match: BaselineMatch) -> Dict[int, str]:
    """``id(finding)`` -> stable hash of its 5-field baseline fingerprint.

    Computed over new + baselined findings together so the occurrence
    index matches the baseline file exactly; SARIF consumers use the
    hash to track a result across runs even as line numbers move.
    """
    combined: List[Finding] = list(match.new) + list(match.baselined)
    ordered = sorted(combined, key=lambda f: (f.path, f.line, f.col, f.rule))
    table: Dict[int, str] = {}
    for finding, fingerprint in zip(ordered, fingerprint_findings(combined)):
        digest = hashlib.sha256(
            json.dumps(list(fingerprint)).encode("utf-8")
        ).hexdigest()[:16]
        table[id(finding)] = digest
    return table

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_human(result: AnalysisResult, match: BaselineMatch) -> str:
    """One ``path:line:col: RULE message`` line per new finding + summary."""
    lines: List[str] = [f.render() for f in match.new]
    summary = (
        f"{len(match.new)} finding{'s' if len(match.new) != 1 else ''} "
        f"in {result.files_checked} file"
        f"{'s' if result.files_checked != 1 else ''}"
    )
    if match.baselined:
        summary += f" ({len(match.baselined)} baselined)"
    lines.append(summary)
    for rule, path, message, endpoint, occurrence in match.stale:
        lines.append(
            f"stale baseline entry: {rule} {path} "
            f"(occurrence {occurrence}): {message}"
        )
    lines.extend(f"warning: {w}" for w in result.warnings)
    lines.extend(f"error: {err}" for err in result.errors)
    return "\n".join(lines)


def render_json(result: AnalysisResult, match: BaselineMatch) -> str:
    """The full run as a JSON document (stable key order)."""
    payload = {
        "files_checked": result.files_checked,
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "endpoint": f.endpoint,
            }
            for f in match.new
        ],
        "baselined": len(match.baselined),
        "stale_baseline": [
            {"rule": rule, "path": path, "message": message,
             "endpoint": endpoint, "occurrence": occurrence}
            for rule, path, message, endpoint, occurrence in match.stale
        ],
        "warnings": list(result.warnings),
        "errors": list(result.errors),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(result: AnalysisResult, match: BaselineMatch) -> str:
    """The run as a SARIF 2.1.0 log (new findings only, like the others)."""
    from repro.analysis.rules import all_project_rules, all_rules

    summaries: Dict[str, str] = {
        rule_id: cls.summary
        for rule_id, cls in {**all_rules(), **all_project_rules()}.items()
    }
    rule_ids = sorted({f.rule for f in match.new})
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": summaries.get(rule_id, rule_id)},
        }
        for rule_id in rule_ids
    ]
    fingerprints = _partial_fingerprints(match)
    results = [
        {
            "ruleId": f.rule,
            "ruleIndex": rule_index[f.rule],
            "level": "error",
            "message": {"text": f.message},
            "partialFingerprints": {
                _FINGERPRINT_KEY: fingerprints[id(f)],
            },
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path.replace("\\", "/")},
                        "region": {
                            "startLine": f.line,
                            # SARIF columns are 1-based; ours are 0-based.
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in match.new
    ]
    notifications = [
        {"level": "warning", "message": {"text": text}}
        for text in result.warnings
    ] + [
        {"level": "error", "message": {"text": text}}
        for text in result.errors
    ]
    invocation = {"executionSuccessful": not result.errors}
    if notifications:
        invocation["toolExecutionNotifications"] = notifications
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-mntp-lint",
                        "informationUri":
                            "https://example.invalid/repro-mntp",
                        "version": TOOL_VERSION,
                        "rules": rules,
                    }
                },
                "invocations": [invocation],
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)

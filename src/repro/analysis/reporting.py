"""Finding renderers: human-readable lines and machine-readable JSON."""

from __future__ import annotations

import json
from typing import List

from repro.analysis.baseline import BaselineMatch
from repro.analysis.engine import AnalysisResult


def render_human(result: AnalysisResult, match: BaselineMatch) -> str:
    """One ``path:line:col: RULE message`` line per new finding + summary."""
    lines: List[str] = [f.render() for f in match.new]
    summary = (
        f"{len(match.new)} finding{'s' if len(match.new) != 1 else ''} "
        f"in {result.files_checked} file"
        f"{'s' if result.files_checked != 1 else ''}"
    )
    if match.baselined:
        summary += f" ({len(match.baselined)} baselined)"
    lines.append(summary)
    for rule, path, message, occurrence in match.stale:
        lines.append(
            f"stale baseline entry: {rule} {path} "
            f"(occurrence {occurrence}): {message}"
        )
    lines.extend(f"error: {err}" for err in result.errors)
    return "\n".join(lines)


def render_json(result: AnalysisResult, match: BaselineMatch) -> str:
    """The full run as a JSON document (stable key order)."""
    payload = {
        "files_checked": result.files_checked,
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
            }
            for f in match.new
        ],
        "baselined": len(match.baselined),
        "stale_baseline": [
            {"rule": rule, "path": path, "message": message,
             "occurrence": occurrence}
            for rule, path, message, occurrence in match.stale
        ],
        "errors": list(result.errors),
    }
    return json.dumps(payload, indent=2, sort_keys=True)

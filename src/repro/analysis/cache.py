"""Content-hash incremental lint cache.

The engine's phase-one output for a file — its per-file findings, flow
summary, and noqa tables — is a pure function of the file's bytes and
the engine configuration (tool version + enabled rules).  The cache
persists those records in ``.repro-lint-cache.json`` keyed by content
hash, so a warm run over an unchanged tree re-reads bytes to hash them
but re-parses nothing; the whole-program phase then runs from cached
summaries alone.

Separate engine configurations (e.g. the full ``src`` gate and the
DET-only ``tests`` gate) occupy separate sections of the same file and
do not evict each other.  A tool-version bump or a rule-set change
invalidates only the affected section.  The cache file is a disposable
artifact: it is git-ignored, and any read/parse problem degrades to an
empty cache, never to an error.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Set

from repro.analysis.engine import TOOL_VERSION

CACHE_VERSION = 1

#: Default cache filename, resolved against the working directory.
DEFAULT_CACHE_NAME = ".repro-lint-cache.json"


def config_key(rule_ids: Sequence[str]) -> str:
    """Cache-section key for an engine configuration."""
    return f"{TOOL_VERSION}:{','.join(sorted(rule_ids))}"


class LintCache:
    """One cache section, bound to a file path and a configuration."""

    def __init__(self, path: Path, key: str) -> None:
        self.path = path
        self.key = key
        self._configs: Dict[str, Dict[str, Any]] = {}
        self._touched: Set[str] = set()
        self._dirty = False
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            data = None
        if isinstance(data, dict) and data.get("version") == CACHE_VERSION:
            configs = data.get("configs")
            if isinstance(configs, dict):
                self._configs = configs
        self._entries: Dict[str, Any] = self._configs.setdefault(self.key, {})

    def lookup(self, display_path: str, digest: str) -> Optional[Dict[str, Any]]:
        """The cached phase-one record, if the content hash still matches."""
        entry = self._entries.get(display_path)
        if not isinstance(entry, dict) or entry.get("digest") != digest:
            return None
        record = entry.get("record")
        if not isinstance(record, dict):
            return None
        self._touched.add(display_path)
        return record

    def store(
        self, display_path: str, digest: str, record: Dict[str, Any]
    ) -> None:
        """Record a freshly computed phase-one result."""
        self._entries[display_path] = {"digest": digest, "record": record}
        self._touched.add(display_path)
        self._dirty = True

    def save(self) -> None:
        """Persist if anything changed; drops entries for vanished files.

        Entries are pruned by file existence, not by whether this run
        touched them, so linting a single file does not evict the rest
        of the tree's warm entries.  Failures to write are swallowed —
        the cache is an optimisation, never a correctness dependency.
        """
        stale = [
            path for path in self._entries
            if path not in self._touched and not Path(path).exists()
        ]
        if stale:
            for path in stale:
                del self._entries[path]
            self._dirty = True
        if not self._dirty:
            return
        payload = {"version": CACHE_VERSION, "configs": self._configs}
        try:
            self.path.write_text(
                json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
            )
        except OSError:
            pass

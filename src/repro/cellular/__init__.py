"""Cellular (4G) substrate for the §3.3 experiments.

The Galaxy S4 / 4G environment is reproduced with an RRC state-machine
delay model: a device idle between synchronization requests pays a
radio *promotion* delay on the first uplink packet, which inflates the
request path asymmetrically and biases SNTP offsets — the mechanism
behind Figure 5's 192 ms mean offset.
"""

from repro.cellular.ran import RadioAccessNetwork, RanParams, RrcState
from repro.cellular.phone import CellularExperiment, CellularOptions, GpsTimeSync
from repro.cellular.nitz import NitzService, NitzParams

__all__ = [
    "RadioAccessNetwork",
    "RanParams",
    "RrcState",
    "CellularExperiment",
    "CellularOptions",
    "GpsTimeSync",
    "NitzService",
    "NitzParams",
]

"""NITZ — Network Identity and Time Zone (3GPP TS 22.042).

The paper's §2: "wireless devices also support a mechanism called NITZ
to update clocks in a one-off fashion ... a weaker mechanism to obtain
time information as the estimates are not obtained in a periodic
fashion like NTP and are dependent on the device crossing a network
boundary."

Modelled accordingly: boundary crossings arrive as a Poisson process
(a stationary device may see none for days); each crossing delivers the
network's time truncated to whole seconds plus the carrier's own error,
and the device steps its clock to it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.clock.simclock import SimClock
from repro.simcore.simulator import Simulator


@dataclass(frozen=True)
class NitzParams:
    """NITZ behaviour parameters.

    Attributes:
        crossing_rate_hz: Poisson rate of network-boundary crossings
            (default ~ one per 8 hours, a commuting handset).
        carrier_error_sigma: Std-dev of the carrier clock's own error
            (seconds) — carriers are frequently off by seconds.
        quantization: NITZ carries whole seconds only.
    """

    crossing_rate_hz: float = 1.0 / (8 * 3600.0)
    carrier_error_sigma: float = 2.0
    quantization: float = 1.0

    def __post_init__(self) -> None:
        if self.crossing_rate_hz < 0:
            raise ValueError("crossing rate must be non-negative")
        if self.quantization <= 0:
            raise ValueError("quantization must be positive")


class NitzService:
    """Applies NITZ time updates to a phone clock on boundary crossings."""

    def __init__(
        self,
        sim: Simulator,
        clock: SimClock,
        params: NitzParams = NitzParams(),
        stream_name: str = "nitz",
    ) -> None:
        self._sim = sim
        self.clock = clock
        self.params = params
        self._rng = sim.rng.stream(stream_name)
        self.updates = 0
        self._running = False

    def start(self) -> None:
        """Begin waiting for boundary crossings."""
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        """Cease applying updates."""
        self._running = False

    def force_crossing(self) -> float:
        """Apply one crossing immediately (e.g. device boot / flight
        mode toggle); returns the applied correction in seconds."""
        true_now = self._sim.now
        carrier_time = true_now + float(
            self._rng.normal(0.0, self.params.carrier_error_sigma)
        )
        q = self.params.quantization
        nitz_time = math.floor(carrier_time / q) * q
        correction = nitz_time - self.clock.read()
        self.clock.step(correction)
        self.updates += 1
        self._sim.trace.emit(
            self._sim.now, "nitz", "update", correction=correction
        )
        return correction

    def _schedule_next(self) -> None:
        if not self._running or self.params.crossing_rate_hz == 0:
            return
        gap = float(self._rng.exponential(1.0 / self.params.crossing_rate_hz))
        self._sim.call_after(gap, self._on_crossing, label="nitz:crossing")

    def _on_crossing(self) -> None:
        if not self._running:
            return
        self.force_crossing()
        self._schedule_next()

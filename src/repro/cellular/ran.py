"""Radio access network delay model (LTE RRC state machine).

States and transitions:

* ``IDLE`` — radio released; the next uplink packet triggers an RRC
  connection setup (promotion) costing hundreds of milliseconds.
* ``CONNECTED`` — packets flow with moderate scheduling delay; an
  inactivity timer (network-configured, typically ~10 s) demotes the
  radio back to IDLE.

The promotion penalty applies to the *uplink* only, which makes the
request/response delay asymmetric — exactly the error SNTP cannot see
and the paper's Figure 5 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np


class RrcState(Enum):
    """Radio resource control state."""

    IDLE = "idle"
    CONNECTED = "connected"


@dataclass
class RanParams:
    """4G delay model parameters.

    Attributes:
        promotion_mean / promotion_sigma: RRC idle->connected setup cost
            (seconds), normal-distributed, floored at promotion_min.
        promotion_min: Lower bound on promotion delay.
        inactivity_timeout: Seconds of silence before demotion to IDLE.
        uplink_base / downlink_base: Propagation+core floors (seconds).
        uplink_jitter / downlink_jitter: Mean of the Gamma scheduling
            jitter per direction.
        loss_rate: Packet loss probability.
        spike_rate / spike_scale: Heavy-tail delay episodes (handovers,
            cell congestion).
    """

    promotion_mean: float = 0.350
    promotion_sigma: float = 0.100
    promotion_min: float = 0.150
    inactivity_timeout: float = 10.0
    uplink_base: float = 0.045
    downlink_base: float = 0.035
    uplink_jitter: float = 0.020
    downlink_jitter: float = 0.012
    loss_rate: float = 0.01
    spike_rate: float = 0.03
    spike_scale: float = 0.250


class RadioAccessNetwork:
    """Stateful 4G delay sampler.

    Args:
        params: Delay model parameters.
        rng: Random stream.
        now_fn: Callable returning current virtual time (drives the
            inactivity timer).
    """

    def __init__(self, params: RanParams, rng: np.random.Generator, now_fn) -> None:
        self.params = params
        self._rng = rng
        self._now_fn = now_fn
        self._last_activity = -1e18
        self.promotions = 0

    @property
    def state(self) -> RrcState:
        """Current RRC state derived from the inactivity timer."""
        if self._now_fn() - self._last_activity > self.params.inactivity_timeout:
            return RrcState.IDLE
        return RrcState.CONNECTED

    def sample_uplink(self) -> "tuple[float, bool]":
        """(delay, lost) for one uplink packet; may pay promotion."""
        p = self.params
        now = self._now_fn()
        promotion = 0.0
        if self.state is RrcState.IDLE:
            promotion = max(
                p.promotion_min,
                float(self._rng.normal(p.promotion_mean, p.promotion_sigma)),
            )
            self.promotions += 1
        self._last_activity = now
        if self._rng.random() < p.loss_rate:
            return float("inf"), True
        delay = p.uplink_base + promotion
        delay += float(self._rng.gamma(1.2, p.uplink_jitter / 1.2))
        if self._rng.random() < p.spike_rate:
            delay += float(self._rng.exponential(p.spike_scale))
        return delay, False

    def sample_downlink(self) -> "tuple[float, bool]":
        """(delay, lost) for one downlink packet (radio already up)."""
        p = self.params
        self._last_activity = self._now_fn()
        if self._rng.random() < p.loss_rate:
            return float("inf"), True
        delay = p.downlink_base
        delay += float(self._rng.gamma(1.2, p.downlink_jitter / 1.2))
        if self._rng.random() < p.spike_rate:
            delay += float(self._rng.exponential(p.spike_scale))
        return delay, False

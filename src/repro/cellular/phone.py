"""The §3.3 phone experiment: SNTP offsets on a 4G network.

Components:

* a phone-grade drifting clock (Samsung Galaxy S4 stand-in);
* :class:`GpsTimeSync` — the SmartTimeSync-app substitute that corrects
  the system clock from GPS fixes (small residual error per fix);
* an SNTP app polling ``0.pool.ntp.org`` across the
  :class:`~repro.cellular.ran.RadioAccessNetwork`.

The paper ran this for 3 hours with no monitor node or cross-traffic;
the RAN's promotion/scheduling delays alone produce the large, biased
SNTP offsets of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cellular.ran import RadioAccessNetwork, RanParams
from repro.clock.oscillator import OSCILLATOR_GRADES, Oscillator
from repro.clock.simclock import SimClock
from repro.net.message import Datagram
from repro.ntp.pool import PoolDns
from repro.ntp.server import NtpServer, ServerConfig
from repro.ntp.sntp_client import SntpClient, SntpResult
from repro.simcore.simulator import Simulator
from repro.testbed.experiment import OffsetPoint, SeriesStats


@dataclass
class CellularOptions:
    """Experiment switches for the phone run.

    Attributes:
        duration: Virtual seconds (paper: 3 hours).
        cadence: Seconds between SNTP requests.  Long enough relative to
            the RRC inactivity timeout that most requests pay promotion.
        gps_fix_interval: Seconds between GPS clock corrections.
        gps_residual_sigma: Residual clock error after each fix (s).
        ran: RAN delay parameters.
        pool_size: Member servers behind the pool name.
    """

    duration: float = 3 * 3600.0
    cadence: float = 30.0
    gps_fix_interval: float = 60.0
    gps_residual_sigma: float = 0.005
    ran: RanParams = field(default_factory=RanParams)
    pool_size: int = 4


class GpsTimeSync:
    """SmartTimeSync substitute: periodic GPS-fix clock correction.

    Each fix steps the system clock to true time plus a small residual
    (GPS timestamp delivery error on commodity hardware).
    """

    def __init__(
        self,
        sim: Simulator,
        clock: SimClock,
        interval: float,
        residual_sigma: float,
    ) -> None:
        self._sim = sim
        self.clock = clock
        self.interval = interval
        self.residual_sigma = residual_sigma
        self._rng = sim.rng.stream("gps")
        self.fixes = 0
        self._running = False

    def start(self) -> None:
        """Begin periodic fixes."""
        self._running = True
        self._sim.call_after(0.0, self._fix, label="gps:fix")

    def stop(self) -> None:
        """Stop fixing."""
        self._running = False

    def _fix(self) -> None:
        if not self._running:
            return
        residual = float(self._rng.normal(0.0, self.residual_sigma))
        self.clock.step(-self.clock.true_offset() + residual)
        self.fixes += 1
        self._sim.call_after(self.interval, self._fix, label="gps:fix")


class CellularExperiment:
    """Build and run the Figure-5 experiment."""

    def __init__(self, seed: int = 0, options: CellularOptions = CellularOptions()) -> None:
        self.seed = seed
        self.options = options

    def run(self) -> "CellularResult":
        """Execute and return the SNTP offset series."""
        opts = self.options
        sim = Simulator(seed=self.seed)
        ran = RadioAccessNetwork(opts.ran, sim.rng.stream("ran"), lambda: sim.now)
        phone_clock = SimClock(
            oscillator=Oscillator(OSCILLATOR_GRADES["phone"], sim.rng.stream("phone-osc")),
            now_fn=lambda: sim.now,
        )
        gps = GpsTimeSync(
            sim, phone_clock, opts.gps_fix_interval, opts.gps_residual_sigma
        )

        # Pool servers sit behind the RAN + a short wired core path.
        servers: List[NtpServer] = []
        for i in range(opts.pool_size):
            name = f"0.pool.ntp.org#{i}"
            server_clock = SimClock(
                oscillator=Oscillator(
                    OSCILLATOR_GRADES["server"], sim.rng.stream(f"osc:{name}")
                ),
                now_fn=lambda: sim.now,
            )
            servers.append(NtpServer(sim, server_clock, ServerConfig(name=name)))
        dns = PoolDns(sim.rng.stream("dns"))
        dns.register("0.pool.ntp.org", servers)

        client = SntpClient(sim, phone_clock, send=lambda d: None, name="phone")

        def send(datagram: Datagram) -> None:
            server = dns.resolve(datagram.dst)
            delay, lost = ran.sample_uplink()
            if lost:
                return

            def arrive() -> None:
                server.on_datagram(datagram)

            sim.call_after(delay, arrive, label="ran:up")

        client._send = send  # bind after dns exists

        def reply(datagram: Datagram) -> None:
            delay, lost = ran.sample_downlink()
            if lost:
                return
            sim.call_after(
                delay, lambda: client.on_datagram(datagram), label="ran:down"
            )

        for server in servers:
            server.send_reply = reply

        result = CellularResult(duration=opts.duration)
        queries = sim.telemetry.metrics.counter(
            "sntp_queries_total", "SNTP requests issued by the phone app"
        )
        failures = sim.telemetry.metrics.counter(
            "sntp_query_failures_total",
            "phone SNTP queries with no usable response",
        )
        fixes = sim.telemetry.metrics.counter(
            "gps_fixes_total", "GPS clock corrections applied"
        )

        def poll() -> None:
            if sim.now >= opts.duration:
                return

            def on_result(res: SntpResult) -> None:
                if res.ok:
                    assert res.sample is not None
                    result.offsets.append(
                        OffsetPoint(sim.now, res.sample.offset, phone_clock.true_offset())
                    )
                else:
                    result.failures += 1
                    failures.inc()

            queries.inc()
            client.query("0.pool.ntp.org", on_result, timeout=3.0)
            sim.call_after(opts.cadence, poll, label="phone:poll")

        gps.start()
        sim.call_after(0.0, poll, label="phone:poll")
        sim.run_until(opts.duration)
        gps.stop()
        result.promotions = ran.promotions
        result.gps_fixes = gps.fixes
        fixes.inc(gps.fixes)
        # Close spans of work still in flight at the horizon (open
        # exchanges, interference episodes) so the causal assembler sees
        # every tree the run started.
        sim.telemetry.spans.end_all()
        result.telemetry = sim.telemetry.snapshot()
        return result


@dataclass
class CellularResult:
    """Series and counters from one phone run.

    ``telemetry`` holds the run's frozen
    :meth:`repro.obs.Telemetry.snapshot` (metrics + trace records).
    """

    offsets: List[OffsetPoint] = field(default_factory=list)
    failures: int = 0
    promotions: int = 0
    gps_fixes: int = 0
    duration: float = 0.0
    telemetry: Optional[Dict[str, Any]] = None

    def stats(self) -> SeriesStats:
        """Summary of the reported SNTP offsets."""
        return SeriesStats.of(self.offsets)

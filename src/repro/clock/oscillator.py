"""Crystal oscillator models.

The paper attributes clock drift to "differences in environmental
conditions or crystal oscillator quality".  We model an oscillator by

* a constant frequency error (parts per million, the dominant term per
  Murdoch CCS'06, which the paper cites for "the constant skew factor
  dominates its variable counterpart"),
* a random-walk frequency wander intensity, and
* a temperature coefficient (ppm per Kelvin away from a reference
  temperature), the mechanism behind the paper's observation that wired
  free-running drift "is dependent on the temperature of the
  vendor-specific oscillator".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


@dataclass(frozen=True)
class OscillatorGrade:
    """Parameter bundle describing one quality class of oscillator.

    Attributes:
        name: Grade identifier.
        base_skew_ppm_sigma: Std-dev of the constant frequency error draw.
        wander_ppm_per_sqrt_s: Random-walk frequency intensity.
        temp_coeff_ppm_per_k: Frequency sensitivity to temperature.
        reference_temp_c: Temperature at which the temp term vanishes.
    """

    name: str
    base_skew_ppm_sigma: float
    wander_ppm_per_sqrt_s: float
    temp_coeff_ppm_per_k: float
    reference_temp_c: float = 25.0


#: Canonical grades.  Values are representative of commodity hardware:
#: laptop/phone crystals sit in the 1-50 ppm class; OCXO/GPS-disciplined
#: references used by stratum servers are orders of magnitude better.
OSCILLATOR_GRADES: Dict[str, OscillatorGrade] = {
    "reference": OscillatorGrade(
        name="reference",
        base_skew_ppm_sigma=1e-4,
        wander_ppm_per_sqrt_s=1e-6,
        temp_coeff_ppm_per_k=1e-5,
    ),
    "server": OscillatorGrade(
        name="server",
        base_skew_ppm_sigma=0.5,
        wander_ppm_per_sqrt_s=1e-4,
        temp_coeff_ppm_per_k=0.01,
    ),
    "laptop": OscillatorGrade(
        name="laptop",
        base_skew_ppm_sigma=15.0,
        wander_ppm_per_sqrt_s=2e-3,
        temp_coeff_ppm_per_k=0.08,
    ),
    "phone": OscillatorGrade(
        name="phone",
        base_skew_ppm_sigma=25.0,
        wander_ppm_per_sqrt_s=5e-3,
        temp_coeff_ppm_per_k=0.15,
    ),
}


class Oscillator:
    """A concrete oscillator instance drawn from a grade.

    The constant skew is sampled once at construction from the grade's
    distribution; wander is integrated by the owning clock.
    """

    def __init__(self, grade: OscillatorGrade, rng: np.random.Generator) -> None:
        self.grade = grade
        self.base_skew_ppm = float(rng.normal(0.0, grade.base_skew_ppm_sigma))
        self._rng = rng

    def frequency_error(self, wander_ppm: float, temperature_c: float) -> float:
        """Total fractional frequency error (dimensionless, s/s).

        Args:
            wander_ppm: Accumulated random-walk component in ppm.
            temperature_c: Current ambient temperature.
        """
        temp_term = self.grade.temp_coeff_ppm_per_k * (
            temperature_c - self.grade.reference_temp_c
        )
        total_ppm = self.base_skew_ppm + wander_ppm + temp_term
        return total_ppm * 1e-6

    def wander_step(self, dt: float) -> float:
        """Draw the random-walk frequency increment (ppm) over ``dt`` seconds."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        if dt == 0:
            return 0.0
        sigma = self.grade.wander_ppm_per_sqrt_s * (dt**0.5)
        return float(self._rng.normal(0.0, sigma))

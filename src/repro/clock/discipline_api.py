"""Clock-correction policy interface.

Both the NTP discipline loop and MNTP's ``correctSystemClock`` /
``correctSystemClockDrift`` steps apply corrections through this small
protocol, so experiments can swap step-only (SNTP/Android-style),
slew-preferred (ntpd-style), or no-op (measurement-only) policies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clock.simclock import SimClock


@dataclass(frozen=True)
class SlewLimits:
    """Thresholds controlling step-vs-slew decisions.

    Attributes:
        step_threshold: Offsets larger than this are stepped (ntpd: 128 ms).
        max_slew_rate: Maximum slew rate in s/s (ntpd: 500 ppm).
    """

    step_threshold: float = 0.128
    max_slew_rate: float = 500e-6


class ClockCorrector:
    """Applies phase and frequency corrections to a :class:`SimClock`.

    Args:
        clock: The clock to correct.
        limits: Step/slew policy thresholds.
        enabled: When False every correction is a no-op; used for the
            paper's "without NTP clock correction" (free-running) runs
            and for MNTP's measurement-only baseline mode.
    """

    def __init__(
        self,
        clock: SimClock,
        limits: SlewLimits = SlewLimits(),
        enabled: bool = True,
    ) -> None:
        self.clock = clock
        self.limits = limits
        self.enabled = enabled

    def apply_offset(self, measured_offset: float) -> str:
        """Correct the clock by the measured offset (server - local).

        Returns the action taken: ``"step"``, ``"slew"`` or ``"noop"``.
        """
        if not self.enabled:
            return "noop"
        if abs(measured_offset) > self.limits.step_threshold:
            self.clock.step(measured_offset)
            return "step"
        self.clock.slew(measured_offset, rate=self.limits.max_slew_rate)
        return "slew"

    def apply_offset_step(self, measured_offset: float) -> str:
        """Correct the clock by stepping unconditionally.

        Mobile OSes adjust time via a settimeofday-style step regardless
        of magnitude (the paper's "vendor-specific system calls"); MNTP
        uses this entry point for its regular-phase corrections.
        Returns ``"step"`` or ``"noop"``.
        """
        if not self.enabled:
            return "noop"
        self.clock.step(measured_offset)
        return "step"

    def apply_frequency(self, skew_s_per_s: float) -> str:
        """Trim the clock frequency to cancel an estimated skew.

        Args:
            skew_s_per_s: Estimated drift rate of the local clock in
                seconds per second (positive = local clock fast).

        Returns ``"freq"`` or ``"noop"``.
        """
        if not self.enabled:
            return "noop"
        self.clock.nudge_frequency(-skew_s_per_s * 1e6)
        return "freq"

"""Ambient temperature profiles.

Temperature drives part of oscillator frequency error.  Profiles are
pure functions of virtual time, so experiments remain deterministic.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod


class TemperatureProfile(ABC):
    """Maps virtual time (seconds) to ambient temperature (Celsius)."""

    @abstractmethod
    def at(self, time: float) -> float:
        """Temperature at virtual ``time``."""

    def __eq__(self, other: object) -> bool:
        """Profiles are equal when type and parameters match.

        Profiles are pure functions of virtual time, fully described by
        their constructor parameters, so structural equality is exact
        behavioural equality — what scenario-spec round-trip checks
        rely on.
        """
        if type(other) is not type(self):
            return NotImplemented
        return self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        """Hash consistently with :meth:`__eq__`."""
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))


class ConstantTemperature(TemperatureProfile):
    """Fixed ambient temperature — the paper's 'same ambient temperature'
    laboratory condition."""

    def __init__(self, celsius: float = 25.0) -> None:
        self.celsius = float(celsius)

    def at(self, time: float) -> float:
        return self.celsius


class DiurnalTemperature(TemperatureProfile):
    """Sinusoidal day/night cycle around a mean.

    Used by longer in-situ style experiments and the oscillator ablation.
    """

    def __init__(
        self,
        mean_c: float = 25.0,
        amplitude_c: float = 4.0,
        period_s: float = 86_400.0,
        phase_s: float = 0.0,
    ) -> None:
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.mean_c = float(mean_c)
        self.amplitude_c = float(amplitude_c)
        self.period_s = float(period_s)
        self.phase_s = float(phase_s)

    def at(self, time: float) -> float:
        angle = 2.0 * math.pi * (time + self.phase_s) / self.period_s
        return self.mean_c + self.amplitude_c * math.sin(angle)


class RampTemperature(TemperatureProfile):
    """Linear warm-up (e.g. a device heating after boot), clamped at an
    end temperature."""

    def __init__(
        self, start_c: float = 20.0, end_c: float = 35.0, ramp_duration_s: float = 1800.0
    ) -> None:
        if ramp_duration_s <= 0:
            raise ValueError("ramp duration must be positive")
        self.start_c = float(start_c)
        self.end_c = float(end_c)
        self.ramp_duration_s = float(ramp_duration_s)

    def at(self, time: float) -> float:
        if time <= 0:
            return self.start_c
        if time >= self.ramp_duration_s:
            return self.end_c
        frac = time / self.ramp_duration_s
        return self.start_c + frac * (self.end_c - self.start_c)

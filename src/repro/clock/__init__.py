"""Clock and oscillator models.

Terminology follows Paxson (SIGMETRICS 1998), as the paper does:

* **offset** — difference between a clock's reported time and true time.
* **skew** — first derivative of offset, i.e. frequency error (s/s).
* **drift** — second derivative; here realised as random-walk frequency
  wander plus a temperature-sensitivity term.
"""

from repro.clock.oscillator import Oscillator, OscillatorGrade, OSCILLATOR_GRADES
from repro.clock.temperature import (
    TemperatureProfile,
    ConstantTemperature,
    DiurnalTemperature,
    RampTemperature,
)
from repro.clock.simclock import SimClock
from repro.clock.discipline_api import ClockCorrector, SlewLimits

__all__ = [
    "Oscillator",
    "OscillatorGrade",
    "OSCILLATOR_GRADES",
    "TemperatureProfile",
    "ConstantTemperature",
    "DiurnalTemperature",
    "RampTemperature",
    "SimClock",
    "ClockCorrector",
    "SlewLimits",
]

"""The simulated system clock.

A :class:`SimClock` tracks local time as a function of true (virtual)
time using the standard two-state model:

    local(t) = t + offset(t)
    d offset / dt = skew(t)

where skew is the oscillator's total fractional frequency error
(constant part + random-walk wander + temperature term) plus any
discipline-applied frequency adjustment.  State is advanced lazily: any
read first integrates the model forward from the last update.

Corrections supported:

* ``step(delta)`` — instantaneous phase jump (what SNTP/Android does).
* ``slew(delta, rate)`` — bounded-rate phase adjustment (ntpd-style).
* ``adjust_frequency(ppm)`` — persistent frequency trim (drift correction).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.clock.oscillator import Oscillator
from repro.clock.temperature import ConstantTemperature, TemperatureProfile


class SimClock:
    """A drifting local clock driven by virtual (true) time.

    Args:
        oscillator: Hardware model supplying frequency error.
        now_fn: Callable returning current true time (the simulator's
            ``now``).  Keeping this a callable decouples the clock from
            the kernel.
        temperature: Ambient temperature profile (defaults to constant).
        initial_offset: Starting offset (seconds, local - true).
        update_interval: Wander integration granularity; wander is drawn
            in chunks of at most this many seconds for numerical
            fidelity on long gaps between reads.
    """

    def __init__(
        self,
        oscillator: Oscillator,
        now_fn: Callable[[], float],
        temperature: Optional[TemperatureProfile] = None,
        initial_offset: float = 0.0,
        update_interval: float = 10.0,
    ) -> None:
        if update_interval <= 0:
            raise ValueError("update interval must be positive")
        self.oscillator = oscillator
        self._now_fn = now_fn
        self.temperature = temperature or ConstantTemperature()
        self._offset = float(initial_offset)
        self._wander_ppm = 0.0
        self._freq_adjust_ppm = 0.0
        self._last_true = float(now_fn())
        self._update_interval = float(update_interval)
        # Pending slew state: remaining seconds to absorb and rate cap.
        self._slew_remaining = 0.0
        self._slew_rate = 0.0
        self.step_count = 0
        self.slew_count = 0

    # -- state advancement -----------------------------------------------

    def _advance_to(self, true_now: float) -> None:
        """Integrate offset/wander forward from the last update."""
        if true_now < self._last_true:
            raise ValueError(
                f"true time moved backwards: {true_now} < {self._last_true}"
            )
        remaining = true_now - self._last_true
        t = self._last_true
        while remaining > 0:
            dt = min(remaining, self._update_interval)
            freq = self.oscillator.frequency_error(
                self._wander_ppm, self.temperature.at(t)
            ) + self._freq_adjust_ppm * 1e-6
            self._offset += freq * dt
            self._apply_slew(dt)
            self._wander_ppm += self.oscillator.wander_step(dt)
            t += dt
            remaining -= dt
        self._last_true = true_now

    def _apply_slew(self, dt: float) -> None:
        if self._slew_remaining == 0.0:
            return
        max_adjust = self._slew_rate * dt
        if abs(self._slew_remaining) <= max_adjust:
            adjust = self._slew_remaining
        else:
            adjust = max_adjust if self._slew_remaining > 0 else -max_adjust
        self._offset += adjust
        self._slew_remaining -= adjust

    # -- reads -------------------------------------------------------------

    def read(self) -> float:
        """Local clock time now (seconds)."""
        true_now = self._now_fn()
        self._advance_to(true_now)
        return true_now + self._offset

    def true_offset(self) -> float:
        """Ground-truth offset (local - true), the paper's 'true time offset'."""
        self._advance_to(self._now_fn())
        return self._offset

    def current_skew(self) -> float:
        """Instantaneous fractional frequency error including adjustments."""
        true_now = self._now_fn()
        self._advance_to(true_now)
        return (
            self.oscillator.frequency_error(
                self._wander_ppm, self.temperature.at(true_now)
            )
            + self._freq_adjust_ppm * 1e-6
        )

    # -- corrections --------------------------------------------------------

    def step(self, delta: float) -> None:
        """Jump local time by ``delta`` seconds (positive = advance)."""
        self._advance_to(self._now_fn())
        self._offset += delta
        self.step_count += 1

    def slew(self, delta: float, rate: float = 500e-6) -> None:
        """Absorb ``delta`` seconds gradually at ``rate`` s/s (default
        500 ppm, ntpd's maximum slew rate)."""
        if rate <= 0:
            raise ValueError("slew rate must be positive")
        self._advance_to(self._now_fn())
        self._slew_remaining += delta
        self._slew_rate = rate
        self.slew_count += 1

    def adjust_frequency(self, ppm: float) -> None:
        """Set the persistent frequency trim to ``ppm`` (absolute, not
        cumulative) — models ``adjtimex`` frequency discipline."""
        self._advance_to(self._now_fn())
        self._freq_adjust_ppm = float(ppm)

    def nudge_frequency(self, delta_ppm: float) -> None:
        """Add ``delta_ppm`` to the current frequency trim."""
        self._advance_to(self._now_fn())
        self._freq_adjust_ppm += float(delta_ppm)

    @property
    def frequency_adjustment_ppm(self) -> float:
        """Current discipline-applied frequency trim."""
        return self._freq_adjust_ppm

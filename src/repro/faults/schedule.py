"""Declarative, JSON-round-trippable fault schedules.

A :class:`FaultSchedule` is a list of timed :class:`FaultEpisode`
entries — "blackout from t=600 for 60 s", "step every member of pool 0
by +500 ms between t=600 and t=1200" — that the
:class:`~repro.faults.injectors.FaultInjector` arms against a running
simulation.  The schedule itself carries **no randomness**: stochastic
faults (burst loss, duplication, reordering) declare probabilities here
and draw from a dedicated, seeded simulator stream at injection time,
so the same root seed and schedule always produce the same run, byte
for byte.

Schedules serialize to a stable JSON document (sorted keys) and load
back losslessly, which is what lets an archived chaos report name the
exact hostile conditions it was produced under.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterator, List, Optional, Sequence


class FaultKind(Enum):
    """Every injectable fault class (see docs/ROBUSTNESS.md)."""

    #: Total loss of all matching traffic for the window.
    BLACKOUT = "blackout"
    #: Constant extra one-way delay on matching traffic (asymmetric
    #: surges use two episodes with different ``direction``).
    DELAY_SURGE = "delay_surge"
    #: Bernoulli loss at ``loss_rate`` on matching traffic.
    BURST_LOSS = "burst_loss"
    #: Duplicate matching packets with probability ``dup_rate``; the
    #: copy arrives ``dup_delay_s`` later.
    DUPLICATE = "duplicate"
    #: Add uniform extra delay to a fraction of packets so back-to-back
    #: datagrams overtake each other.
    REORDER = "reorder"
    #: Step the target servers' clocks by ``step_s`` at episode start
    #: and step them back at episode end (a rebooting upstream).
    SERVER_STEP = "server_step"
    #: Ramp the target servers' clocks at ``rate_s_per_s`` for the
    #: window (a falseticker that drifts instead of lying constantly).
    SERVER_DRIFT = "server_drift"
    #: Target servers answer with leap=ALARM / stratum 16 (lost their
    #: own upstream) for the window.
    SERVER_UNSYNC = "server_unsync"
    #: Target servers answer every request with a kiss-of-death RATE
    #: packet for the window.
    KOD_STORM = "kod_storm"
    #: Target servers zero the transmit timestamp in their responses
    #: (RFC 4330 requires clients to discard these).
    ZERO_TRANSMIT = "zero_transmit"
    #: Target servers silently drop every request for the window.
    SERVER_DEATH = "server_death"
    #: The target *node* suspends: its radio is off, all traffic to and
    #: from it is dropped for the window (phone in a pocket).
    SUSPEND = "suspend"


#: Kinds applied per packet on the link layer.
NETWORK_KINDS = frozenset(
    {
        FaultKind.BLACKOUT,
        FaultKind.DELAY_SURGE,
        FaultKind.BURST_LOSS,
        FaultKind.DUPLICATE,
        FaultKind.REORDER,
    }
)

#: Kinds applied to :class:`~repro.ntp.server.NtpServer` behaviour.
SERVER_KINDS = frozenset(
    {
        FaultKind.SERVER_STEP,
        FaultKind.SERVER_DRIFT,
        FaultKind.SERVER_UNSYNC,
        FaultKind.KOD_STORM,
        FaultKind.ZERO_TRANSMIT,
        FaultKind.SERVER_DEATH,
    }
)

#: Valid ``direction`` values for network episodes.
DIRECTIONS = ("up", "down", "both")


@dataclass(frozen=True)
class FaultEpisode:
    """One timed fault: what, when, to whom.

    Attributes:
        kind: The fault class.
        start: Virtual time (seconds) the episode begins.
        duration: Episode length in seconds (the window is half-open:
            ``[start, start + duration)``).
        target: Which entities it hits.  ``"*"`` matches everything; a
            pool hostname (``"0.pool.ntp.org"``) matches the pool and
            every member (``"0.pool.ntp.org#2"``); an exact name
            matches only itself.  For :attr:`FaultKind.SUSPEND` the
            target is a node label (the testbed's target node is
            ``"tn"``).
        direction: ``"up"`` (toward servers), ``"down"`` (toward the
            client) or ``"both"``; only meaningful for network kinds.
        params: Kind-specific numeric parameters (see each kind's doc).
    """

    kind: FaultKind
    start: float
    duration: float
    target: str = "*"
    direction: str = "both"
    params: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        """Validate timing, direction, and parameter values."""
        if self.start < 0:
            raise ValueError(f"episode start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ValueError(
                f"episode duration must be positive, got {self.duration}"
            )
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"direction must be one of {DIRECTIONS}, got {self.direction!r}"
            )
        for key, value in self.params.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"param {key!r} must be numeric, got {value!r}")

    @property
    def end(self) -> float:
        """Virtual time the episode ends (exclusive)."""
        return self.start + self.duration

    def active(self, t: float) -> bool:
        """Whether the episode covers virtual time ``t``."""
        return self.start <= t < self.end

    def matches(self, name: str) -> bool:
        """Whether ``name`` (server/node label) is targeted."""
        if self.target == "*":
            return True
        return name == self.target or name.startswith(self.target + "#")

    def affects_direction(self, direction: str) -> bool:
        """Whether a link in ``direction`` ("up"/"down") is targeted."""
        return self.direction == "both" or self.direction == direction

    def param(self, key: str, default: float) -> float:
        """Numeric parameter lookup with a default."""
        return float(self.params.get(key, default))

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (stable, JSON-serializable)."""
        return {
            "kind": self.kind.value,
            "start": self.start,
            "duration": self.duration,
            "target": self.target,
            "direction": self.direction,
            "params": {k: self.params[k] for k in sorted(self.params)},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEpisode":
        """Rebuild an episode from :meth:`to_dict` output."""
        return cls(
            kind=FaultKind(data["kind"]),
            start=float(data["start"]),
            duration=float(data["duration"]),
            target=str(data.get("target", "*")),
            direction=str(data.get("direction", "both")),
            params={str(k): float(v) for k, v in data.get("params", {}).items()},
        )


class FaultSchedule:
    """An ordered collection of :class:`FaultEpisode` entries.

    Args:
        episodes: The episodes, in any order (kept as given; consumers
            that need time order sort on ``start``).
        name: Label used in reports and telemetry.
    """

    def __init__(
        self, episodes: Sequence[FaultEpisode] = (), name: str = "schedule"
    ) -> None:
        self.name = name
        self.episodes: List[FaultEpisode] = list(episodes)

    def __iter__(self) -> Iterator[FaultEpisode]:
        """Iterate the episodes in declaration order."""
        return iter(self.episodes)

    def __len__(self) -> int:
        """Number of episodes."""
        return len(self.episodes)

    def __eq__(self, other: object) -> bool:
        """Schedules are equal when name and episodes match exactly."""
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return self.name == other.name and self.episodes == other.episodes

    def __repr__(self) -> str:
        """Compact debugging form."""
        return f"FaultSchedule({self.name!r}, {len(self.episodes)} episodes)"

    def add(self, episode: FaultEpisode) -> "FaultSchedule":
        """Append an episode; returns self for chaining."""
        self.episodes.append(episode)
        return self

    def active(self, t: float, kinds: Optional[frozenset] = None) -> List[FaultEpisode]:
        """Episodes covering time ``t`` (optionally of the given kinds)."""
        return [
            e
            for e in self.episodes
            if e.active(t) and (kinds is None or e.kind in kinds)
        ]

    def of_kinds(self, kinds: frozenset) -> List[FaultEpisode]:
        """Episodes whose kind is in ``kinds``."""
        return [e for e in self.episodes if e.kind in kinds]

    def horizon(self) -> float:
        """Latest episode end time (0.0 for an empty schedule)."""
        return max((e.end for e in self.episodes), default=0.0)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (stable, JSON-serializable)."""
        return {
            "name": self.name,
            "episodes": [e.to_dict() for e in self.episodes],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Stable JSON text (sorted keys; byte-identical per schedule)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSchedule":
        """Rebuild a schedule from :meth:`to_dict` output."""
        return cls(
            episodes=[FaultEpisode.from_dict(e) for e in data.get("episodes", [])],
            name=str(data.get("name", "schedule")),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        """Parse :meth:`to_json` output back into a schedule.

        Raises:
            ValueError: On malformed JSON or invalid episode fields.
        """
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid fault schedule JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ValueError("fault schedule JSON must be an object")
        return cls.from_dict(data)

"""Deterministic fault injection for chaos experiments.

The subsystem has three layers:

* :mod:`repro.faults.schedule` — declarative timed
  :class:`~repro.faults.schedule.FaultEpisode` lists
  (:class:`~repro.faults.schedule.FaultSchedule`), JSON-round-trippable
  so a survival report can name the exact hostile conditions it was
  produced under;
* :mod:`repro.faults.injectors` — the
  :class:`~repro.faults.injectors.FaultInjector` that arms a schedule
  against a live simulation, wrapping the per-link effect hooks and
  mutating :class:`~repro.ntp.server.NtpServer` fault state at episode
  boundaries, with every episode visible as a ``fault.episode`` span;
* :mod:`repro.faults.chaos` — the chaos harness: the default fault
  matrix, the hardened-vs-plain comparison run, and the deterministic
  survival report behind ``repro-mntp chaos``.
"""

from repro.faults.schedule import (
    DIRECTIONS,
    FaultEpisode,
    FaultKind,
    FaultSchedule,
    NETWORK_KINDS,
    SERVER_KINDS,
)
from repro.faults.injectors import FaultInjector
from repro.faults.chaos import ChaosOptions, default_fault_matrix, run_chaos

__all__ = [
    "ChaosOptions",
    "DIRECTIONS",
    "FaultEpisode",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "NETWORK_KINDS",
    "SERVER_KINDS",
    "default_fault_matrix",
    "run_chaos",
]

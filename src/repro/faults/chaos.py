"""Chaos harness: scenario × fault-matrix runs and survival reports.

One chaos run drives the full testbed with a fault schedule armed,
running the **plain** SNTP client and the **hardened** MNTP stack side
by side on the same clock, same seed, same faults.  The survival
report then answers, per injected episode, whether each protocol
recovered: how long until the first good sample after the episode
ended, and the worst error inside the post-episode window.

Everything is deterministic — same seed + schedule produces a byte
identical JSON report — so the ``chaos --smoke`` gate in
``scripts/check.sh`` can assert survival without tolerances.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.config import MntpConfig
from repro.faults.schedule import FaultEpisode, FaultKind, FaultSchedule
from repro.ntp.sntp_client import HardeningPolicy

#: Minimum good samples a post-episode window needs before a protocol
#: counts as recovered (guards against vacuous "no samples, no error").
MIN_WINDOW_SAMPLES = 3


@dataclass(frozen=True)
class ChaosOptions:
    """Chaos run parameters.

    Attributes:
        seed: Root seed for all randomness.
        duration: Virtual seconds to simulate; None picks the default
            matching the schedule (full matrix or smoke subset).
        threshold_s: Recovery bar on |measurement error| (the issue's
            acceptance criterion: 25 ms).
        grace_s: Settling time after an episode before the judged
            post-episode window opens (covers one step-recovery
            detection latency).
        smoke: Run the reduced smoke matrix (CI gate) instead of the
            full one.
        sntp_cadence: Seconds between baseline SNTP queries.
    """

    seed: int = 0
    duration: Optional[float] = None
    threshold_s: float = 0.025
    grace_s: float = 90.0
    smoke: bool = False
    sntp_cadence: float = 5.0


def chaos_mntp_config() -> MntpConfig:
    """The hardened-MNTP configuration chaos runs use.

    Short warm-up and a tight cadence so recovery latency is visible at
    experiment scale; measurement-only (no clock corrections) so errors
    compare directly against the plain SNTP series; step recovery on —
    that is the graceful-degradation path under test.
    """
    return MntpConfig(
        warmup_period=300.0,
        warmup_wait_time=5.0,
        regular_wait_time=5.0,
        reset_period=86_400.0,
        enable_drift_correction=False,
        enable_clock_correction=False,
        enable_step_recovery=True,
    )


def default_fault_matrix(smoke: bool = False) -> FaultSchedule:
    """The issue's default fault matrix.

    The full matrix covers every :class:`FaultKind` once (network
    faults hit all paths; server faults hit the ``0.pool.ntp.org``
    members — MNTP's regular-phase source — leaving the other pools as
    failover targets).  Episodes are spaced so every one has a clean
    post-episode window before the next begins.  The smoke subset keeps
    one fault per family (network / server-time / server-protocol) for
    the CI gate.
    """
    pool0 = "0.pool.ntp.org"
    if smoke:
        return FaultSchedule(
            name="smoke",
            episodes=[
                FaultEpisode(FaultKind.BLACKOUT, start=600.0, duration=60.0),
                FaultEpisode(
                    FaultKind.SERVER_STEP, start=840.0, duration=120.0,
                    target=pool0, params={"step_s": 0.5},
                ),
                FaultEpisode(
                    FaultKind.ZERO_TRANSMIT, start=1140.0, duration=90.0,
                    target=pool0,
                ),
            ],
        )
    return FaultSchedule(
        name="default",
        episodes=[
            FaultEpisode(FaultKind.BLACKOUT, start=600.0, duration=60.0),
            FaultEpisode(
                FaultKind.DELAY_SURGE, start=840.0, duration=90.0,
                direction="down", params={"delay_s": 0.35},
            ),
            FaultEpisode(
                FaultKind.BURST_LOSS, start=1140.0, duration=90.0,
                params={"loss_rate": 0.85},
            ),
            FaultEpisode(
                FaultKind.DUPLICATE, start=1440.0, duration=60.0,
                params={"dup_rate": 0.5, "dup_delay_s": 0.05},
            ),
            FaultEpisode(
                FaultKind.REORDER, start=1440.0, duration=60.0,
                params={"reorder_rate": 0.5, "jitter_s": 0.15},
            ),
            FaultEpisode(
                FaultKind.SERVER_STEP, start=1740.0, duration=240.0,
                target=pool0, params={"step_s": 0.5},
            ),
            FaultEpisode(
                FaultKind.SERVER_DRIFT, start=2220.0, duration=240.0,
                target=pool0, params={"rate_s_per_s": 0.0008},
            ),
            FaultEpisode(
                FaultKind.KOD_STORM, start=2700.0, duration=150.0,
                target=pool0,
            ),
            FaultEpisode(
                FaultKind.SERVER_UNSYNC, start=3000.0, duration=150.0,
                target=pool0,
            ),
            FaultEpisode(
                FaultKind.ZERO_TRANSMIT, start=3300.0, duration=150.0,
                target=pool0,
            ),
            FaultEpisode(
                FaultKind.SERVER_DEATH, start=3600.0, duration=150.0,
                target=pool0,
            ),
            FaultEpisode(
                FaultKind.SUSPEND, start=3900.0, duration=90.0, target="tn",
            ),
        ],
    )


def _default_duration(smoke: bool) -> float:
    return 1440.0 if smoke else 4200.0


def _series_errors(points: "list") -> List["tuple[float, float]"]:
    """(time, |error|) pairs for points carrying ground truth."""
    return [
        (p.time, abs(p.error))
        for p in points
        if p.truth == p.truth  # not NaN
    ]


def _window_verdict(
    errors: List["tuple[float, float]"],
    episode_end: float,
    window: "tuple[float, float]",
    threshold: float,
) -> Dict[str, Any]:
    """Judge one protocol's recovery after one episode.

    Args:
        errors: The protocol's (time, |error|) series, time-sorted.
        episode_end: When the episode's faults reverted.
        window: The judged post-episode interval (after grace).
        threshold: Recovery bar on |error|.
    """
    w0, w1 = window
    in_window = [e for t, e in errors if w0 <= t < w1]
    recovery_s: Optional[float] = None
    for t, e in errors:
        if t >= episode_end and e < threshold:
            recovery_s = t - episode_end
            break
    recovered = (
        len(in_window) >= MIN_WINDOW_SAMPLES
        and max(in_window) < threshold
    )
    return {
        "samples": len(in_window),
        "max_abs_error_s": max(in_window) if in_window else None,
        "recovery_s": recovery_s,
        "recovered": recovered,
    }


def _post_windows(
    schedule: FaultSchedule, duration: float, grace: float
) -> List["tuple[FaultEpisode, tuple[float, float]]"]:
    """Each episode with its judged post-episode window.

    The window runs from ``end + grace`` to the start of the next
    later-starting episode (or the run horizon).
    """
    ordered = sorted(schedule, key=lambda e: (e.start, e.end, e.kind.value))
    out = []
    for episode in ordered:
        nxt = min(
            (e.start for e in ordered if e.start > episode.end),
            default=duration,
        )
        out.append((episode, (episode.end + grace, min(nxt, duration))))
    return out


def run_chaos(
    options: ChaosOptions = ChaosOptions(),
    schedule: Optional[FaultSchedule] = None,
) -> Dict[str, Any]:
    """Run the chaos comparison and build the survival report.

    Plain SNTP and hardened MNTP run side by side in one simulation
    under ``schedule`` (default: :func:`default_fault_matrix`).
    Returns the ``mntp-chaos-report-v1`` dict; serialize with
    :func:`report_to_json` for the byte-stable form.
    """
    # Imported here: repro.testbed depends on repro.faults, so a
    # module-level import would be circular.
    from repro.obs.causal import assemble_exchanges, completeness
    from repro.testbed.experiment import ExperimentRunner
    from repro.testbed.nodes import TestbedOptions

    if schedule is None:
        schedule = default_fault_matrix(options.smoke)
    duration = (
        _default_duration(options.smoke)
        if options.duration is None
        else options.duration
    )
    runner = ExperimentRunner(
        seed=options.seed,
        # Wired topology, no ntpd, no monitor loop: the only adversity
        # in a chaos run is the injected schedule, so every error in the
        # report is attributable to an episode.
        options=TestbedOptions(
            wireless=False,
            ntp_correction=False,
            monitor_active=False,
            fault_schedule=schedule,
            mntp_hardening=HardeningPolicy(),
        ),
        duration=duration,
        sntp_cadence=options.sntp_cadence,
        mntp_config=chaos_mntp_config(),
    )
    result = runner.run()
    testbed = runner.testbed
    mntp = runner.mntp
    assert testbed is not None and mntp is not None

    sntp_errors = sorted(_series_errors(result.sntp))
    mntp_errors = sorted(_series_errors(result.mntp_accepted()))

    episodes: List[Dict[str, Any]] = []
    for episode, window in _post_windows(schedule, duration, options.grace_s):
        episodes.append(
            {
                "kind": episode.kind.value,
                "target": episode.target,
                "direction": episode.direction,
                "start": episode.start,
                "end": episode.end,
                "window": [window[0], window[1]],
                "mntp": _window_verdict(
                    mntp_errors, episode.end, window, options.threshold_s
                ),
                "sntp": _window_verdict(
                    sntp_errors, episode.end, window, options.threshold_s
                ),
            }
        )

    exchanges = assemble_exchanges(result.telemetry or {})

    def client_counters(client) -> Dict[str, int]:
        return {
            "queries_sent": client.queries_sent,
            "responses_received": client.responses_received,
            "timeouts": client.timeouts,
            "kod_received": client.kod_received,
            "invalid_received": client.invalid_received,
            "backed_off_queries": client.backed_off_queries,
            "failovers": client.failovers,
            "pending_evictions": client.pending_evictions,
        }

    def wasted(counters: Dict[str, int]) -> int:
        return (
            counters["timeouts"]
            + counters["kod_received"]
            + counters["invalid_received"]
            + counters["backed_off_queries"]
        )

    mntp_counters = client_counters(testbed.mntp_app)
    sntp_counters = client_counters(testbed.sntp_app)
    mntp_survived = all(e["mntp"]["recovered"] for e in episodes)
    sntp_survived = all(e["sntp"]["recovered"] for e in episodes)

    return {
        "format": "mntp-chaos-report-v1",
        "seed": options.seed,
        "duration": duration,
        "threshold_s": options.threshold_s,
        "grace_s": options.grace_s,
        "smoke": options.smoke,
        "schedule": schedule.to_dict(),
        "episodes": episodes,
        "mntp": {
            "accepted": len(result.mntp_accepted()),
            "rejected": len(result.mntp_rejected()),
            "step_detections": mntp.step_detections,
            "reset_count": mntp.reset_count,
            "max_abs_error_s": max((e for _, e in mntp_errors), default=None),
            "queries": mntp_counters,
            "queries_wasted": wasted(mntp_counters),
        },
        "sntp": {
            "samples": len(result.sntp),
            "failures": result.sntp_failures,
            "max_abs_error_s": max((e for _, e in sntp_errors), default=None),
            "queries": sntp_counters,
            "queries_wasted": wasted(sntp_counters),
        },
        "observability": {
            "exchanges": len(exchanges),
            "completeness": completeness(exchanges),
        },
        "verdict": {
            "mntp_survived": mntp_survived,
            "sntp_survived": sntp_survived,
        },
    }


def report_to_json(report: Dict[str, Any]) -> str:
    """Byte-stable JSON text of a survival report (sorted keys)."""
    return json.dumps(report, sort_keys=True, indent=2)

"""Arms a :class:`~repro.faults.schedule.FaultSchedule` against a run.

One :class:`FaultInjector` per simulation.  It plugs into the two
seams the stack already exposes:

* the per-link ``effect_hook`` (see :class:`repro.net.link.Link`) —
  network episodes mutate the sampled :class:`~repro.net.link.
  LinkEffect` per packet (drop, extra delay, duplication, reordering
  jitter);
* :class:`~repro.ntp.server.NtpServer` fault state — server episodes
  flip the target servers' :class:`~repro.ntp.server.ServerFaultState`
  at episode start and revert it at episode end, so every fault is
  transient and the post-episode window measures recovery.

All stochastic decisions draw from the dedicated ``faults:injector``
stream, which is name-isolated in the RNG registry: adding fault
injection never perturbs the sequences any other component sees, and
the same root seed plus schedule reproduces the run byte for byte.
Every episode is visible to the observability layer as a
``fault.episode`` span, which :mod:`repro.obs.causal` attaches to the
exchanges it overlapped.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.faults.schedule import (
    FaultEpisode,
    FaultKind,
    FaultSchedule,
    NETWORK_KINDS,
)
from repro.net.link import ExtraEffectFn, LinkEffect
from repro.ntp.server import NtpServer
from repro.simcore.simulator import Simulator

#: Kinds checked by :meth:`FaultInjector.node_suspended`.
_SUSPEND_KINDS = frozenset({FaultKind.SUSPEND})


class FaultInjector:
    """Schedules episode boundaries and applies per-packet effects.

    Args:
        sim: The simulation kernel the schedule is armed against.
        schedule: The episodes to inject.
    """

    def __init__(self, sim: Simulator, schedule: FaultSchedule) -> None:
        self._sim = sim
        self.schedule = schedule
        self._rng = sim.rng.stream("faults:injector")
        metrics = sim.telemetry.metrics
        self._episodes_started = metrics.counter(
            "fault_episodes_total", "fault episodes whose window opened"
        )
        self._packets_dropped = metrics.counter(
            "fault_packets_dropped_total",
            "packets dropped by blackout/burst-loss/suspend faults",
        )
        self._packets_delayed = metrics.counter(
            "fault_packets_delayed_total",
            "packets given extra delay by surge/reorder faults",
        )
        self._packets_duplicated = metrics.counter(
            "fault_packets_duplicated_total",
            "packets duplicated by duplication faults",
        )
        self._installed = False

    # -- arming -----------------------------------------------------------

    def install(self, servers: Dict[str, NtpServer]) -> None:
        """Arm every episode: spans at the boundaries, server mutations.

        Network and suspend episodes only need their ``fault.episode``
        span scheduled (their per-packet effect is evaluated lazily in
        the wrapped hooks); server episodes additionally apply and
        revert the matching servers' fault state.  Idempotent-guarded:
        a second call is an error.
        """
        if self._installed:
            raise RuntimeError("fault schedule already installed")
        self._installed = True
        for episode in self.schedule:
            targets = [s for n, s in servers.items() if episode.matches(n)]
            self._arm_episode(episode, targets)

    def _arm_episode(self, episode: FaultEpisode, targets: "list[NtpServer]") -> None:
        state = {"span": None}

        def begin() -> None:
            self._episodes_started.inc()
            health = getattr(self._sim, "health", None)
            if health is not None:
                # The run-health monitor annotates SLO transitions that
                # happen inside a fault window (or its grace period).
                health.fault_begin(self._sim.now)
            sampler = self._sim.telemetry.sampler
            if sampler is not None:
                # Fault windows always keep their causal trees: the
                # sampler suspends 1-in-N dropping until the episode
                # (and any overlapping ones) ends.
                sampler.fault_begin()
            state["span"] = self._sim.telemetry.spans.begin(
                "fault.episode",
                fault=episode.kind.value,
                target=episode.target,
                direction=episode.direction,
                params={k: episode.params[k] for k in sorted(episode.params)},
            )
            self._apply_server_fault(episode, targets)

        def end() -> None:
            self._revert_server_fault(episode, targets)
            span = state["span"]
            if span is not None:
                span.end()
            sampler = self._sim.telemetry.sampler
            if sampler is not None:
                sampler.fault_end()
            health = getattr(self._sim, "health", None)
            if health is not None:
                health.fault_end(self._sim.now)

        self._sim.call_at(episode.start, begin, label="fault:begin")
        self._sim.call_at(episode.end, end, label="fault:end")

    # -- server episodes ----------------------------------------------------

    def _apply_server_fault(
        self, episode: FaultEpisode, targets: "list[NtpServer]"
    ) -> None:
        kind, now = episode.kind, self._sim.now
        for server in targets:
            faults = server.faults
            if kind is FaultKind.SERVER_STEP:
                faults.add_step(episode.param("step_s", 0.5))
            elif kind is FaultKind.SERVER_DRIFT:
                faults.add_rate(now, episode.param("rate_s_per_s", 0.001))
            elif kind is FaultKind.SERVER_UNSYNC:
                faults.unsynchronized += 1
            elif kind is FaultKind.KOD_STORM:
                faults.kod_storm += 1
            elif kind is FaultKind.ZERO_TRANSMIT:
                faults.zero_transmit += 1
            elif kind is FaultKind.SERVER_DEATH:
                faults.dead += 1

    def _revert_server_fault(
        self, episode: FaultEpisode, targets: "list[NtpServer]"
    ) -> None:
        kind, now = episode.kind, self._sim.now
        for server in targets:
            faults = server.faults
            if kind is FaultKind.SERVER_STEP:
                faults.add_step(-episode.param("step_s", 0.5))
            elif kind is FaultKind.SERVER_DRIFT:
                # The server resyncs: remove the rate and the bias it
                # accrued over the window, so the net effect is zero.
                rate = episode.param("rate_s_per_s", 0.001)
                faults.add_rate(now, -rate)
                faults.add_step(-rate * episode.duration)
            elif kind is FaultKind.SERVER_UNSYNC:
                faults.unsynchronized -= 1
            elif kind is FaultKind.KOD_STORM:
                faults.kod_storm -= 1
            elif kind is FaultKind.ZERO_TRANSMIT:
                faults.zero_transmit -= 1
            elif kind is FaultKind.SERVER_DEATH:
                faults.dead -= 1

    # -- network episodes ---------------------------------------------------

    def wrap_hook(
        self,
        base: Optional[ExtraEffectFn],
        direction: str,
        target: str,
    ) -> ExtraEffectFn:
        """Wrap a link's effect hook with the schedule's network faults.

        Args:
            base: The link's existing hook (the wireless channel) or
                None for wired links.
            direction: ``"up"`` or ``"down"`` — which way this link
                carries traffic, matched against episode directions.
            target: The server name this link serves, matched against
                episode targets.
        """

        def hook() -> LinkEffect:
            effect = base() if base is not None else LinkEffect()
            active = self.schedule.active(self._sim.now, NETWORK_KINDS)
            if not active:
                return effect
            was_lost = effect.lost
            base_delay = effect.extra_delay
            for episode in active:
                if not episode.matches(target):
                    continue
                if not episode.affects_direction(direction):
                    continue
                self._apply_packet_fault(episode, effect)
            if effect.lost and not was_lost:
                self._packets_dropped.inc()
            if effect.extra_delay > base_delay and not effect.lost:
                self._packets_delayed.inc()
            if effect.duplicate_extra is not None and not effect.lost:
                self._packets_duplicated.inc()
            return effect

        return hook

    def _apply_packet_fault(self, episode: FaultEpisode, effect: LinkEffect) -> None:
        kind = episode.kind
        if kind is FaultKind.BLACKOUT:
            effect.lost = True
        elif kind is FaultKind.DELAY_SURGE:
            effect.extra_delay += episode.param("delay_s", 0.25)
        elif kind is FaultKind.BURST_LOSS:
            if self._rng.random() < episode.param("loss_rate", 0.5):
                effect.lost = True
        elif kind is FaultKind.DUPLICATE:
            if self._rng.random() < episode.param("dup_rate", 0.25):
                effect.duplicate_extra = episode.param("dup_delay_s", 0.05)
        elif kind is FaultKind.REORDER:
            if self._rng.random() < episode.param("reorder_rate", 0.3):
                effect.extra_delay += float(
                    self._rng.uniform(0.0, episode.param("jitter_s", 0.2))
                )

    # -- suspend -------------------------------------------------------------

    def node_suspended(self, name: str) -> bool:
        """Whether a suspend episode currently freezes node ``name``."""
        return any(
            e.matches(name)
            for e in self.schedule.active(self._sim.now, _SUSPEND_KINDS)
        )

    def record_suspend_drop(
        self, name: str, trace_id: Optional[str], ident: Optional[int] = None
    ) -> None:
        """Emit the drop record for a packet lost to a suspend episode.

        The record carries the exchange's trace id so the causal
        assembler still closes the tree (outcome ``timeout`` with an
        attributable drop) instead of losing completeness.
        """
        self._packets_dropped.inc()
        self._sim.telemetry.emit(
            self._sim.now, f"node:{name}", "drop",
            cause="suspend", trace_id=trace_id, ident=ident,
        )

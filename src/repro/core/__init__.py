"""MNTP — Mobile NTP, the paper's contribution (§4).

MNTP modifies SNTP in two ways:

1. **Channel-aware pacing** — synchronization requests are emitted only
   while the wireless hints (RSSI, noise, SNR margin) satisfy baseline
   thresholds; otherwise they are deferred.
2. **Trend-line filtering** — recorded offsets are fit with a degree-1
   least-squares line; a new offset is accepted only if its squared
   error against the extrapolated line is within one standard deviation
   of the historical mean squared error.  Multi-server warm-up samples
   additionally pass a mean+1σ false-ticker rejection.

The drift estimate (trend-line slope) is re-estimated on every accepted
sample — the fix the authors report discovering via the MNTP tuner.
"""

from repro.core.config import MntpConfig, HintThresholds
from repro.core.thresholds import favorable_snr_condition
from repro.core.trend import TrendLine
from repro.core.falsetickers import reject_false_tickers, FalseTickerVerdict
from repro.core.filter import OffsetFilter, FilterDecision
from repro.core.protocol import Mntp, MntpPhase
from repro.core.events import MntpEventKind

__all__ = [
    "MntpConfig",
    "HintThresholds",
    "favorable_snr_condition",
    "TrendLine",
    "reject_false_tickers",
    "FalseTickerVerdict",
    "OffsetFilter",
    "FilterDecision",
    "Mntp",
    "MntpPhase",
    "MntpEventKind",
]

"""Typed MNTP decision events.

Every decision the protocol makes is emitted into the simulation trace
under component ``"mntp"`` with one of these kinds; the Figure-7
"signals and selection" reproduction and the tests read them back.
"""

from __future__ import annotations

from enum import Enum


class MntpEventKind(str, Enum):
    """Trace event kinds emitted by :class:`repro.core.protocol.Mntp`."""

    DEFERRED = "deferred"                    # hint gate not satisfied
    QUERY_SENT = "query_sent"
    QUERY_FAILED = "query_failed"            # timeout / bad response
    FALSE_TICKER = "false_ticker"            # warm-up source rejected
    OFFSET_ACCEPTED = "offset_accepted"
    OFFSET_REJECTED = "offset_rejected"      # trend filter rejection
    DRIFT_ESTIMATED = "drift_estimated"
    DRIFT_CORRECTED = "drift_corrected"
    CLOCK_CORRECTED = "clock_corrected"
    WARMUP_COMPLETE = "warmup_complete"
    RESET = "reset"
    STEP_DETECTED = "step_detected"          # sustained residual breach

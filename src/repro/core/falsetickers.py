"""Warm-up false-ticker rejection.

Following "the philosophy of NTP's clock selection heuristic", the
warm-up phase queries three pool servers in parallel and rejects the
sources whose offsets exceed the population mean plus one standard
deviation (§4.2).  The deviation is measured as distance from the mean,
so a source that is wrong in either direction is caught; this matches
the heuristic's intent (NTP's own intersection algorithm is symmetric).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np


@dataclass(frozen=True)
class FalseTickerVerdict:
    """Result of one rejection round.

    Attributes:
        accepted: Surviving (source, offset) pairs.
        rejected: Sources classified as false tickers.
        combined_offset: Mean of the surviving offsets.
    """

    accepted: Dict[str, float]
    rejected: List[str]
    combined_offset: float


def reject_false_tickers(offsets_by_source: Dict[str, float]) -> FalseTickerVerdict:
    """Classify sources and combine the survivors.

    Args:
        offsets_by_source: One offset per responding source.

    Raises:
        ValueError: With an empty input.

    With a single source there is nothing to vote against, so it is
    accepted as-is.  With ≥2 sources, a source is a false ticker when
    ``|offset - mean| > std``; if the rule would reject everything (all
    sources equidistant), all are kept — rejecting the full population
    would deadlock the warm-up.
    """
    if not offsets_by_source:
        raise ValueError("need at least one source offset")
    if len(offsets_by_source) == 1:
        ((source, offset),) = offsets_by_source.items()
        return FalseTickerVerdict(
            accepted={source: offset}, rejected=[], combined_offset=offset
        )
    values = np.asarray(list(offsets_by_source.values()))
    mean = float(values.mean())
    std = float(values.std())
    accepted: Dict[str, float] = {}
    rejected: List[str] = []
    for source, offset in offsets_by_source.items():
        if std > 0 and abs(offset - mean) > std:
            rejected.append(source)
        else:
            accepted[source] = offset
    if not accepted:
        accepted = dict(offsets_by_source)
        rejected = []
    combined = float(np.mean(list(accepted.values())))
    return FalseTickerVerdict(
        accepted=accepted, rejected=rejected, combined_offset=combined
    )

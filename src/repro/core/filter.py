"""The MNTP offset filter.

Implements §4.2's accept/reject rule: extend the fitted trend line to
the candidate's measurement time, compute the squared error of the
reported offset against that prediction, and reject when the squared
error falls more than one standard deviation above the mean of the
historical squared residuals (two-sided optionally, per the paper's
literal wording).  Until :attr:`min_samples` offsets are recorded the
filter is in bootstrap mode and accepts everything (the warm-up's
"record 10 offset values ... to create a trend line").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.trend import TrendLine


class FilterDecision(Enum):
    """Why a candidate was accepted or rejected."""

    ACCEPT_BOOTSTRAP = "accept_bootstrap"
    ACCEPT = "accept"
    REJECT_HIGH_ERROR = "reject_high_error"
    REJECT_LOW_ERROR = "reject_low_error"  # two-sided mode only

    @property
    def accepted(self) -> bool:
        """Whether the sample enters the record."""
        return self in (FilterDecision.ACCEPT_BOOTSTRAP, FilterDecision.ACCEPT)


@dataclass(frozen=True)
class FilterOutcome:
    """Decision plus the quantities that produced it (for traces).

    Attributes:
        decision: The verdict.
        predicted: Trend-line prediction at the sample time (NaN in
            bootstrap mode).
        squared_error: Squared error vs the prediction (NaN bootstrap).
        gate: mean + std of historical squared residuals (NaN bootstrap).
    """

    decision: FilterDecision
    predicted: float = float("nan")
    squared_error: float = float("nan")
    gate: float = float("nan")


class OffsetFilter:
    """Stateful accept/reject filter around a :class:`TrendLine`.

    Args:
        min_samples: Bootstrap sample count (paper: 10).
        gate_floor: Absolute residual (seconds) always considered
            acceptable.  The mean+1σ squared-error gate collapses to
            near zero after a very clean bootstrap, which starves the
            regular phase (the failure mode §5.3 reports); the floor
            encodes the irreducible SNTP measurement noise.
        max_consecutive_rejections: After this many rejections in a row
            the filter concludes its trend line is wrong (e.g. the
            bootstrap happened inside a channel burst and fitted a bogus
            slope) and re-enters bootstrap.  This is the second guard
            against the §5.3 starvation mode: re-estimation alone cannot
            recover when nothing is being accepted.
        two_sided: Also reject squared errors 1σ *below* the mean.
        reestimate_every_sample: Re-fit on every accepted sample (§5.3
            fix).  When False the trend is frozen after bootstrap and
            only un-freezes on :meth:`reset` — reproducing the pre-fix
            behaviour whose drift underestimation starves the regular
            phase.
    """

    def __init__(
        self,
        min_samples: int = 10,
        gate_floor: float = 0.010,
        max_consecutive_rejections: int = 20,
        two_sided: bool = False,
        reestimate_every_sample: bool = True,
    ) -> None:
        if min_samples < 2:
            raise ValueError("need at least 2 bootstrap samples")
        if gate_floor < 0:
            raise ValueError("gate floor must be non-negative")
        self.min_samples = min_samples
        self.gate_floor = gate_floor
        self.max_consecutive_rejections = max_consecutive_rejections
        self.two_sided = two_sided
        self.reestimate_every_sample = reestimate_every_sample
        self.trend = TrendLine()
        self._frozen_trend: TrendLine | None = None
        self._bootstrap_offers = 0
        self._bootstrap_done = False
        self._consecutive_rejections = 0
        self.rebootstrap_count = 0
        self.accepted_count = 0
        self.rejected_count = 0

    # -- queries -----------------------------------------------------------

    @property
    def bootstrapped(self) -> bool:
        """Whether the bootstrap phase has completed and the trend gates."""
        return self._bootstrap_done

    def drift_estimate(self) -> float | None:
        """Current drift (slope) estimate in s/s, or None pre-fit."""
        return self._active_trend().slope

    def _active_trend(self) -> TrendLine:
        if self.reestimate_every_sample or self._frozen_trend is None:
            return self.trend
        return self._frozen_trend

    # -- the accept/reject rule ----------------------------------------------

    def offer(self, time: float, offset: float) -> FilterOutcome:
        """Evaluate one candidate; accepted samples update the record."""
        if not self._bootstrap_done:
            self.trend.add(time, offset)
            self.accepted_count += 1
            self._bootstrap_offers += 1
            if self._bootstrap_offers >= self.min_samples:
                # The bootstrap set was accepted blind; before the trend
                # starts gating, discard bootstrap points whose squared
                # residual exceeds mean+1σ (the same philosophy as the
                # warm-up false-ticker rejection) so a channel burst
                # during bootstrap cannot poison the gate.
                self._trim_bootstrap()
                self._bootstrap_done = True
                if not self.reestimate_every_sample:
                    self._freeze()
            return FilterOutcome(decision=FilterDecision.ACCEPT_BOOTSTRAP)

        trend = self._active_trend()
        predicted = trend.predict(time)
        assert predicted is not None  # bootstrapped implies >= 2 points
        squared_error = (offset - predicted) ** 2
        mean_r2, std_r2 = trend.residual_stats()
        gate_high = max(mean_r2 + std_r2, self.gate_floor**2)
        gate_low = mean_r2 - std_r2

        if squared_error > gate_high:
            self._note_rejection()
            return FilterOutcome(
                decision=FilterDecision.REJECT_HIGH_ERROR,
                predicted=predicted,
                squared_error=squared_error,
                gate=gate_high,
            )
        if self.two_sided and squared_error < gate_low:
            self._note_rejection()
            return FilterOutcome(
                decision=FilterDecision.REJECT_LOW_ERROR,
                predicted=predicted,
                squared_error=squared_error,
                gate=gate_low,
            )
        self._consecutive_rejections = 0
        self.trend.add(time, offset)
        self.accepted_count += 1
        return FilterOutcome(
            decision=FilterDecision.ACCEPT,
            predicted=predicted,
            squared_error=squared_error,
            gate=gate_high,
        )

    def _note_rejection(self) -> None:
        self.rejected_count += 1
        self._consecutive_rejections += 1
        if self._consecutive_rejections >= self.max_consecutive_rejections:
            self.reset()
            self.rebootstrap_count += 1

    def _trim_bootstrap(self) -> None:
        errs = self.trend.squared_errors()
        if errs.size < 3:
            return
        gate = errs.mean() + errs.std()
        times, offsets = self.trend.points()
        kept = [
            (t, o) for (t, o, e) in zip(times, offsets, errs) if e <= gate
        ]
        # Never trim below half the bootstrap set — with too few points
        # the refit line is meaningless.
        if len(kept) < max(2, len(times) // 2):
            return
        self.trend.clear()
        for t, o in kept:
            self.trend.add(t, o)

    def _freeze(self) -> None:
        frozen = TrendLine()
        for t, o in zip(*self.trend.points()):
            frozen.add(t, o)
        self._frozen_trend = frozen

    def reset(self) -> None:
        """Forget everything (protocol reset period)."""
        self.trend.clear()
        self._frozen_trend = None
        self._bootstrap_offers = 0
        self._bootstrap_done = False

"""The wireless-hint gate: ``favorableSNRCondition()`` of Algorithm 1."""

from __future__ import annotations

from repro.core.config import HintThresholds
from repro.wireless.hints import WirelessHints


def favorable_snr_condition(hints: WirelessHints, thresholds: HintThresholds) -> bool:
    """Whether the channel currently looks stable enough to query.

    All three conditions must hold (§4.2): RSSI above the floor, noise
    below the ceiling, and SNR margin at or above the minimum.
    """
    return (
        hints.rssi_dbm > thresholds.min_rssi_dbm
        and hints.noise_dbm < thresholds.max_noise_dbm
        and hints.snr_margin_db >= thresholds.min_snr_margin_db
    )


def failing_conditions(hints: WirelessHints, thresholds: HintThresholds) -> "list[str]":
    """Names of the threshold(s) a reading violates — used by the
    Figure-7 signals/selection reproduction to attribute deferrals."""
    failures = []
    if hints.rssi_dbm <= thresholds.min_rssi_dbm:
        failures.append("rssi")
    if hints.noise_dbm >= thresholds.max_noise_dbm:
        failures.append("noise")
    if hints.snr_margin_db < thresholds.min_snr_margin_db:
        failures.append("snr_margin")
    return failures

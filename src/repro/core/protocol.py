"""The MNTP protocol state machine — Algorithm 1 of the paper.

Structure mirrors the pseudocode:

* **Warm-up phase** (steps 4-14): wait for a favorable channel, query
  three pool servers in parallel, reject false tickers (mean+1σ),
  record the combined offset (no clock update), repeat every
  ``warmup_wait_time`` until ``warmup_period`` elapses, then estimate
  drift as the trend-line slope.
* **Regular phase** (steps 16-26): correct the clock drift once, then
  per round wait for a favorable channel, query a single source, run
  the trend-line filter, and on acceptance step the system clock;
  repeat every ``regular_wait_time``.
* **Reset** (steps 23-24): after ``reset_period`` the whole algorithm
  restarts from the warm-up.

Clock corrections are tracked in a *compensation* model so the trend
line is always fit in uncorrected-offset space: stepping the clock or
trimming its frequency shifts subsequent raw measurements, and adding
the accumulated compensation back recovers the underlying linear drift
the filter needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional

from repro.clock.discipline_api import ClockCorrector
from repro.core.config import MntpConfig
from repro.core.events import MntpEventKind
from repro.core.falsetickers import reject_false_tickers
from repro.core.filter import OffsetFilter
from repro.core.thresholds import failing_conditions, favorable_snr_condition
from repro.ntp.sntp_client import SntpClient, SntpResult
from repro.obs.spans import Span
from repro.simcore.simulator import Simulator
from repro.wireless.hints import HintProvider

#: Bucket bounds (milliseconds) for the filter-residual histogram.
_RESIDUAL_MS_BUCKETS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0, 1000.0)


class MntpPhase(Enum):
    """Which part of Algorithm 1 is executing."""

    WARMUP = "warmup"
    REGULAR = "regular"
    STOPPED = "stopped"


@dataclass
class MntpReport:
    """One reported (post-filter) MNTP offset.

    Attributes:
        time: Virtual time of the measurement.
        offset: Raw measured offset (server - local), seconds.
        accepted: Whether the filter accepted it.
        phase: Phase during which it was measured.
        corrected: Whether a clock correction was applied on it.
    """

    time: float
    offset: float
    accepted: bool
    phase: MntpPhase
    corrected: bool = False
    #: Residual against the trend line's prediction at measurement time
    #: (uncorrected space) — the paper's "clock corrected drift value".
    #: None while the filter is still bootstrapping.
    residual: Optional[float] = None
    #: Ground-truth clock offset at measurement time, stamped by the
    #: experiment harness (None outside a harness).
    truth: Optional[float] = None


class _Compensation:
    """Piecewise-linear record of corrections MNTP has applied.

    ``value(t)`` is the total offset (seconds) by which raw measurements
    at time ``t`` differ from the uncorrected clock's trajectory.
    """

    def __init__(self, start_time: float) -> None:
        self._accum = 0.0
        self._rate = 0.0
        self._last_t = start_time

    def _advance(self, t: float) -> None:
        if t > self._last_t:
            self._accum += self._rate * (t - self._last_t)
            self._last_t = t

    def add_step(self, t: float, delta: float) -> None:
        """Record an instantaneous phase correction."""
        self._advance(t)
        self._accum += delta

    def add_rate(self, t: float, delta_rate: float) -> None:
        """Record a frequency trim (seconds/second)."""
        self._advance(t)
        self._rate += delta_rate

    def value(self, t: float) -> float:
        """Total compensation at time ``t``."""
        self._advance(t)
        return self._accum

    def reset(self, t: float) -> None:
        """Forget history (protocol reset keeps the physical corrections
        in place but restarts the bookkeeping in the new epoch)."""
        self._advance(t)
        self._accum = 0.0
        self._rate = 0.0


class Mntp:
    """Runnable MNTP instance bound to a client, hints, and a corrector.

    Args:
        sim: Simulation kernel.
        client: SNTP wire querier (supplies the local clock too).
        hints: Wireless hint source (the only host support MNTP needs).
        corrector: Clock correction sink; disable for measurement-only.
        config: Protocol parameters.
        on_report: Optional callback receiving every :class:`MntpReport`.
    """

    def __init__(
        self,
        sim: Simulator,
        client: SntpClient,
        hints: HintProvider,
        corrector: ClockCorrector,
        config: MntpConfig = MntpConfig(),
        on_report: Optional[Callable[[MntpReport], None]] = None,
    ) -> None:
        self._sim = sim
        self.client = client
        self.hints = hints
        self.corrector = corrector
        self.config = config
        self.on_report = on_report
        self.phase = MntpPhase.STOPPED
        self.filter = OffsetFilter(
            min_samples=config.min_warmup_samples,
            gate_floor=config.filter_gate_floor,
            max_consecutive_rejections=config.max_consecutive_rejections,
            two_sided=config.two_sided_rejection,
            reestimate_every_sample=config.reestimate_every_sample,
        )
        self._comp = _Compensation(sim.now)
        self._algorithm_start = sim.now
        self._phase_start = sim.now
        self.drift_estimate: Optional[float] = None
        self.reports: List[MntpReport] = []
        self.deferral_count = 0
        self.reset_count = 0
        self.step_detections = 0
        # Same-sign residual-breach streak feeding step detection.
        self._step_streak = 0
        self._step_sign = 0
        # Phase epoch: bumped on every phase transition so callbacks
        # scheduled in an abandoned phase (e.g. after a step-recovery
        # reset) expire instead of double-driving the state machine.
        self._phase_epoch = 0
        self._running = False
        self._phase_span: Optional[Span] = None
        metrics = sim.telemetry.metrics
        self._drift_gauge = metrics.gauge(
            "mntp_drift_estimate_ppm", "latest trend-line drift estimate"
        )
        self._residual_hist = metrics.histogram(
            "mntp_abs_residual_ms",
            "absolute filter residual of each offered offset",
            buckets=_RESIDUAL_MS_BUCKETS,
        )
        # Precomputed per-event counter names: _emit runs inside the
        # hot closure, where an f-string per event is real cost.
        self._counter_names = {
            kind: f"mntp_{kind.value}_total" for kind in MntpEventKind
        }

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin Algorithm 1 at step 1."""
        self._running = True
        self._enter_warmup(initial=True)

    def stop(self) -> None:
        """Halt after any in-flight round."""
        self._running = False
        self.phase = MntpPhase.STOPPED
        self._close_phase_span()

    def _emit(self, kind: MntpEventKind, **data) -> None:
        telemetry = self._sim.telemetry
        telemetry.emit(self._sim.now, "mntp", kind.value, **data)
        telemetry.count(self._counter_names[kind])

    def _open_phase_span(self, name: str, **attrs) -> None:
        self._close_phase_span()
        self._phase_span = self._sim.telemetry.spans.begin(name, **attrs)

    def _close_phase_span(self) -> None:
        if self._phase_span is not None:
            self._phase_span.end()
            self._phase_span = None

    # -- reset / phase transitions --------------------------------------------

    def _guarded(self, fn: Callable[[], None]) -> Callable[[], None]:
        """Bind ``fn`` to the current phase epoch.

        The wrapper is a no-op once the protocol has moved on to a new
        phase (or stopped), so continuations scheduled before a
        step-recovery reset cannot fire alongside the new phase's own
        loop.
        """
        epoch = self._phase_epoch

        def run() -> None:
            if self._running and epoch == self._phase_epoch:
                fn()

        return run

    def _enter_warmup(self, initial: bool = False) -> None:
        self.phase = MntpPhase.WARMUP
        self._phase_epoch += 1
        self._step_streak = 0
        self._step_sign = 0
        self._algorithm_start = self._sim.now
        self._phase_start = self._sim.now
        if not initial:
            self.reset_count += 1
            self.filter.reset()
            self._comp.reset(self._sim.now)
            self.drift_estimate = None
            self._emit(MntpEventKind.RESET)
        self._open_phase_span("mntp.warmup", reset_count=self.reset_count)
        self._sim.call_after(0.0, self._guarded(self._warmup_round), label="mntp:warmup")

    def _enter_regular(self) -> None:
        self.phase = MntpPhase.REGULAR
        self._phase_epoch += 1
        self._step_streak = 0
        self._step_sign = 0
        self._phase_start = self._sim.now
        self._open_phase_span("mntp.regular")
        self.drift_estimate = self.filter.drift_estimate()
        self._emit(MntpEventKind.WARMUP_COMPLETE, drift=self.drift_estimate)
        if self.drift_estimate is not None:
            self._drift_gauge.set(self.drift_estimate * 1e6)
            self._emit(MntpEventKind.DRIFT_ESTIMATED, drift=self.drift_estimate)
            if self.config.enable_drift_correction:
                # Trend slope s means the local clock's skew is -s
                # (offset = server - local); cancel it.  Clamp to a
                # crystal-plausible magnitude so a warm-up poisoned by a
                # channel burst cannot run the clock away.
                cap = self.config.max_drift_correction_ppm * 1e-6
                applied = max(-cap, min(cap, self.drift_estimate))
                action = self.corrector.apply_frequency(-applied)
                if action != "noop":
                    self._comp.add_rate(self._sim.now, applied)
                self._emit(MntpEventKind.DRIFT_CORRECTED, drift=applied)
        self._sim.call_after(0.0, self._guarded(self._regular_round), label="mntp:regular")

    def _reset_due(self) -> bool:
        return self._sim.now - self._algorithm_start >= self.config.reset_period

    # -- the hint gate ----------------------------------------------------------

    def _gate_then(self, action: Callable[[], None], wait_span: Optional[Span] = None) -> None:
        """Run ``action`` once the channel is favorable (Algorithm 1's
        ``wait(favorableSNRCondition())``)."""
        if not self.config.enable_hint_gate:
            action()
            return
        reading = self.hints.read_hints()
        if favorable_snr_condition(reading, self.config.thresholds):
            if wait_span is not None:
                wait_span.end()
            action()
            return
        self.deferral_count += 1
        self._emit(
            MntpEventKind.DEFERRED,
            rssi=reading.rssi_dbm,
            noise=reading.noise_dbm,
            snr_margin=reading.snr_margin_db,
            failing=failing_conditions(reading, self.config.thresholds),
        )
        if wait_span is None:
            wait_span = self._sim.telemetry.spans.begin(
                "mntp.gate_wait", phase=self.phase.value
            )
        self._sim.call_after(
            self.config.hint_poll_interval,
            lambda: self._gate_then(action, wait_span),
            label="mntp:gate",
        )

    # -- warm-up phase ------------------------------------------------------------

    def _warmup_round(self) -> None:
        if not self._running:
            return
        if self._sim.now - self._phase_start >= self.config.warmup_period:
            self._enter_regular()
            return
        self._gate_then(self._guarded(self._warmup_query))

    def _warmup_query(self) -> None:
        if not self._running:
            return
        pools = list(self.config.warmup_pools)
        results: Dict[str, Optional[SntpResult]] = {}
        outstanding = {"count": len(pools)}
        epoch = self._phase_epoch
        self._emit(MntpEventKind.QUERY_SENT, phase="warmup", sources=pools)
        query_span = self._sim.telemetry.spans.begin(
            "mntp.query", phase="warmup", sources=len(pools)
        )

        def make_cb(pool: str):
            def on_result(result: SntpResult) -> None:
                results[pool] = result
                outstanding["count"] -= 1
                if outstanding["count"] == 0:
                    query_span.end(
                        ok=sum(1 for r in results.values() if r is not None and r.ok)
                    )
                    # Results landing after a phase transition belong
                    # to an abandoned round; don't feed the new filter.
                    if epoch == self._phase_epoch:
                        self._warmup_collect(results)

            return on_result

        for pool in pools:
            self.client.query(
                pool, make_cb(pool), timeout=self.config.query_timeout
            )

    def _warmup_collect(self, results: Dict[str, Optional[SntpResult]]) -> None:
        if not self._running:
            return
        offsets: Dict[str, float] = {}
        for pool, result in results.items():
            if result is not None and result.ok:
                assert result.sample is not None
                offsets[pool] = result.sample.offset
        if not offsets:
            self._emit(MntpEventKind.QUERY_FAILED, phase="warmup")
            self._schedule(
                self.config.warmup_wait_time,
                self._guarded(self._warmup_round), "warmup",
            )
            return
        verdict = reject_false_tickers(offsets)
        for source in verdict.rejected:
            self._emit(
                MntpEventKind.FALSE_TICKER, source=source, offset=offsets[source]
            )
        epoch = self._phase_epoch
        self._handle_offset(verdict.combined_offset, correct=False)
        if epoch == self._phase_epoch:
            self._schedule(
                self.config.warmup_wait_time,
                self._guarded(self._warmup_round), "warmup",
            )

    # -- regular phase ---------------------------------------------------------------

    def _regular_round(self) -> None:
        if not self._running:
            return
        if self._reset_due():
            self._enter_warmup()
            return
        self._gate_then(self._guarded(self._regular_query))

    def _regular_query(self) -> None:
        if not self._running:
            return
        source = self.config.regular_source
        epoch = self._phase_epoch
        self._emit(MntpEventKind.QUERY_SENT, phase="regular", sources=[source])
        query_span = self._sim.telemetry.spans.begin(
            "mntp.query", phase="regular", sources=1
        )

        def on_result(result: SntpResult) -> None:
            query_span.end(ok=1 if result.ok else 0)
            if not self._running or epoch != self._phase_epoch:
                return
            if result.ok:
                assert result.sample is not None
                self._handle_offset(
                    result.sample.offset,
                    correct=self.config.enable_clock_correction,
                )
            else:
                self._emit(MntpEventKind.QUERY_FAILED, phase="regular")
            if epoch == self._phase_epoch:
                self._schedule(
                    self.config.regular_wait_time,
                    self._guarded(self._regular_round), "regular",
                )

        self.client.query(source, on_result, timeout=self.config.query_timeout)

    # -- shared offset handling ---------------------------------------------------------

    def _handle_offset(self, offset: float, correct: bool) -> None:
        now = self._sim.now
        uncorrected = offset + self._comp.value(now)
        if self.config.enable_filter:
            outcome = self.filter.offer(now, uncorrected)
            accepted = outcome.decision.accepted
        else:
            self.filter.trend.add(now, uncorrected)
            accepted = True
            outcome = None
        residual = None
        if outcome is not None and outcome.predicted == outcome.predicted:  # not NaN
            residual = uncorrected - outcome.predicted
            abs_residual_ms = abs(residual) * 1000.0
            self._residual_hist.observe(abs_residual_ms)
            if self._sim.telemetry.sampler is not None:
                self._sim.telemetry.observe_exemplar(
                    "mntp_abs_residual_ms", abs_residual_ms, ref=f"t={now:.3f}"
                )
        report = MntpReport(
            time=now, offset=offset, accepted=accepted, phase=self.phase,
            residual=residual,
        )
        if accepted:
            self._step_streak = 0
            self._step_sign = 0
            if self.config.reestimate_every_sample:
                self.drift_estimate = self.filter.drift_estimate()
            if correct:
                action = self.corrector.apply_offset_step(offset)
                if action != "noop":
                    self._comp.add_step(now, offset)
                    report.corrected = True
                    self._emit(MntpEventKind.CLOCK_CORRECTED, offset=offset)
            self._emit(
                MntpEventKind.OFFSET_ACCEPTED,
                offset=offset,
                uncorrected=uncorrected,
                phase=self.phase.value,
            )
        else:
            assert outcome is not None
            self._emit(
                MntpEventKind.OFFSET_REJECTED,
                offset=offset,
                uncorrected=uncorrected,
                predicted=outcome.predicted,
                squared_error=outcome.squared_error,
                gate=outcome.gate,
                phase=self.phase.value,
            )
            self._note_rejection(residual)
        self.reports.append(report)
        if self.on_report is not None:
            self.on_report(report)

    def _note_rejection(self, residual: Optional[float]) -> None:
        """Feed a filter rejection into step detection.

        An upstream clock step shifts every subsequent measurement by
        the step, so the trend-line filter rejects a run of samples
        whose residuals all breach the gate *with the same sign*.
        Detecting that streak and re-entering warm-up (with the usual
        filter/compensation reset) re-acquires the stepped timescale in
        one warm-up period instead of stonewalling until the scheduled
        protocol reset.
        """
        if not self.config.enable_step_recovery:
            return
        if residual is None or abs(residual) < self.config.step_recovery_min_residual:
            self._step_streak = 0
            self._step_sign = 0
            return
        sign = 1 if residual > 0 else -1
        if sign == self._step_sign:
            self._step_streak += 1
        else:
            self._step_sign = sign
            self._step_streak = 1
        if self._step_streak < self.config.step_recovery_rejections:
            return
        self.step_detections += 1
        self._emit(
            MntpEventKind.STEP_DETECTED,
            residual=residual,
            streak=self._step_streak,
            phase=self.phase.value,
        )
        self._enter_warmup()

    def _schedule(self, delay: float, fn: Callable[[], None], tag: str) -> None:
        if self._running:
            self._sim.call_after(delay, fn, label=f"mntp:{tag}")

    # -- convenience accessors ----------------------------------------------------

    def accepted_offsets(self) -> List[MntpReport]:
        """Reports the filter accepted."""
        return [r for r in self.reports if r.accepted]

    def rejected_offsets(self) -> List[MntpReport]:
        """Reports the filter rejected."""
        return [r for r in self.reports if not r.accepted]

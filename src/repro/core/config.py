"""MNTP configuration.

The four Algorithm-1 inputs plus the hint thresholds of §4.2 and the
feature toggles the paper's evaluation uses (drift correction off for
the head-to-head baseline; warm-up skipped in §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class HintThresholds:
    """Baseline thresholds for the wireless hints (§4.2).

    The paper: "RSSI value should be greater than -75 dB, noise level
    should be lesser than -70 dB and the SNR margin should be greater
    than or equal to 20 dB."
    """

    min_rssi_dbm: float = -75.0
    max_noise_dbm: float = -70.0
    min_snr_margin_db: float = 20.0


@dataclass(frozen=True)
class MntpConfig:
    """Full MNTP parameter set.

    Attributes:
        warmup_period: Duration of the warm-up phase (seconds).
        warmup_wait_time: Gap between warm-up requests (seconds).
        regular_wait_time: Gap between regular-phase requests (seconds).
        reset_period: Warm-up + regular duration before a full reset.
        thresholds: Wireless-hint gate values.
        min_warmup_samples: Offsets required before the trend line is
            considered established (paper: 10).
        filter_gate_floor: Residual magnitude (seconds) the filter always
            accepts, encoding irreducible SNTP noise (see
            :class:`repro.core.filter.OffsetFilter`).
        max_consecutive_rejections: Rejection streak after which the
            filter re-enters bootstrap (starvation escape).
        max_drift_correction_ppm: Clamp on the frequency trim applied at
            warm-up completion.  Crystal frequency errors are tens of
            ppm at most; a trend-line slope beyond this is a poisoned
            estimate (channel burst during warm-up), and trimming by it
            would run the clock away until the next reset.
        hint_poll_interval: How often the gate re-checks hints while
            deferring (seconds).
        query_timeout: Per-request response timeout (seconds).
        enable_hint_gate: Pace requests on channel conditions.
        enable_filter: Apply trend-line accept/reject.
        enable_drift_correction: Apply the frequency trim at the start
            of the regular phase (off in the §5.1 head-to-head runs).
        enable_clock_correction: Apply phase corrections on accepted
            regular-phase offsets (off in measurement-only baselines).
        reestimate_every_sample: Re-fit the trend on every accepted
            sample (the §5.3 fix); False reproduces the pre-fix filter.
        enable_step_recovery: Graceful degradation after an upstream
            step: a sustained same-sign trend-line residual breach
            re-enters warm-up with a compensation reset instead of
            rejecting samples until the next scheduled reset.  Off by
            default to preserve the paper-baseline behaviour.
        step_recovery_rejections: Consecutive same-sign breaches that
            constitute a detected step.
        step_recovery_min_residual: Residual magnitude (seconds) that
            counts toward the streak; smaller residuals reset it.
        two_sided_rejection: Reject squared errors more than 1σ *below*
            the mean as well (the paper's literal wording); the default
            one-sided gate only rejects high outliers.
        warmup_pools: Pool hostnames queried in parallel during warm-up.
        regular_source: Single source queried in the regular phase.
    """

    warmup_period: float = 1800.0
    warmup_wait_time: float = 15.0
    regular_wait_time: float = 900.0
    reset_period: float = 14_400.0
    thresholds: HintThresholds = field(default_factory=HintThresholds)
    min_warmup_samples: int = 10
    filter_gate_floor: float = 0.010
    max_consecutive_rejections: int = 20
    max_drift_correction_ppm: float = 50.0
    hint_poll_interval: float = 1.0
    query_timeout: float = 2.0
    enable_hint_gate: bool = True
    enable_filter: bool = True
    enable_drift_correction: bool = True
    enable_clock_correction: bool = True
    reestimate_every_sample: bool = True
    two_sided_rejection: bool = False
    enable_step_recovery: bool = False
    step_recovery_rejections: int = 6
    step_recovery_min_residual: float = 0.05
    warmup_pools: "tuple[str, ...]" = (
        "0.pool.ntp.org",
        "1.pool.ntp.org",
        "3.pool.ntp.org",  # the paper skips 2.pool.ntp.org
    )
    regular_source: str = "0.pool.ntp.org"

    def __post_init__(self) -> None:
        for name in ("warmup_period", "warmup_wait_time", "regular_wait_time", "reset_period"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.min_warmup_samples < 2:
            raise ValueError("need at least 2 warm-up samples to fit a line")
        if not self.warmup_pools:
            raise ValueError("warm-up needs at least one pool")
        if self.step_recovery_rejections < 2:
            raise ValueError("step detection needs at least 2 breaches")
        if self.step_recovery_min_residual <= 0:
            raise ValueError("step_recovery_min_residual must be positive")

    def with_overrides(self, **kwargs) -> "MntpConfig":
        """Return a copy with fields replaced (convenience for sweeps)."""
        return replace(self, **kwargs)

    @classmethod
    def baseline_headtohead(cls, cadence_s: float = 5.0) -> "MntpConfig":
        """§5.1 baseline setup: requests every 5 s for an hour, "we do
        not consider warmup and regular periods, and we switched off the
        drift correction feature" — realised as a warm-up that spans the
        whole run with measurement-only corrections."""
        return cls(
            warmup_period=3600.0 * 24,
            warmup_wait_time=cadence_s,
            regular_wait_time=cadence_s,
            reset_period=3600.0 * 48,
            enable_drift_correction=False,
            enable_clock_correction=False,
        )


#: Table 2's six sample tuner configurations (minutes in the paper,
#: seconds here), keyed by configuration number.
TABLE2_CONFIGS: Dict[int, MntpConfig] = {
    1: MntpConfig(warmup_period=30 * 60, warmup_wait_time=0.25 * 60,
                  regular_wait_time=15 * 60, reset_period=240 * 60),
    2: MntpConfig(warmup_period=40 * 60, warmup_wait_time=0.25 * 60,
                  regular_wait_time=15 * 60, reset_period=240 * 60),
    3: MntpConfig(warmup_period=50 * 60, warmup_wait_time=0.25 * 60,
                  regular_wait_time=15 * 60, reset_period=240 * 60),
    4: MntpConfig(warmup_period=70 * 60, warmup_wait_time=0.25 * 60,
                  regular_wait_time=30 * 60, reset_period=240 * 60),
    5: MntpConfig(warmup_period=90 * 60, warmup_wait_time=0.084 * 60,
                  regular_wait_time=15 * 60, reset_period=240 * 60),
    6: MntpConfig(warmup_period=240 * 60, warmup_wait_time=0.084 * 60,
                  regular_wait_time=15 * 60, reset_period=240 * 60),
}

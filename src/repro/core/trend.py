"""Trend-line fitting for clock drift.

The paper fits "a trend line using least squares polynomial fit with a
first degree polynomial" over the recorded offsets — the slope is the
drift (skew) estimate, re-estimated on every accepted sample.  The
filter measures each candidate offset's squared error against the
line's extrapolation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np


class TrendLine:
    """Incrementally maintained degree-1 least-squares fit.

    Points are (time, offset) pairs.  The fit is recomputed from the
    stored points on demand; a ``max_points`` window bounds memory for
    long runs (the regular phase adds a point every request).
    """

    def __init__(self, max_points: int = 4096) -> None:
        if max_points < 2:
            raise ValueError("window must hold at least 2 points")
        self._times: List[float] = []
        self._offsets: List[float] = []
        self._max_points = max_points
        self._coeffs: Optional[Tuple[float, float]] = None  # (slope, intercept)
        self._dirty = True

    def __len__(self) -> int:
        return len(self._times)

    def add(self, time: float, offset: float) -> None:
        """Record an accepted offset sample."""
        self._times.append(float(time))
        self._offsets.append(float(offset))
        if len(self._times) > self._max_points:
            self._times.pop(0)
            self._offsets.pop(0)
        self._dirty = True

    def clear(self) -> None:
        """Forget all samples (protocol reset)."""
        self._times.clear()
        self._offsets.clear()
        self._coeffs = None
        self._dirty = True

    def _fit(self) -> Optional[Tuple[float, float]]:
        if self._dirty:
            if len(self._times) < 2:
                self._coeffs = None
            else:
                t = np.asarray(self._times)
                o = np.asarray(self._offsets)
                # Centre time for numerical stability on large epochs.
                t0 = t.mean()
                slope, intercept_c = np.polyfit(t - t0, o, 1)
                self._coeffs = (float(slope), float(intercept_c - slope * t0))
            self._dirty = False
        return self._coeffs

    @property
    def slope(self) -> Optional[float]:
        """Drift estimate in seconds of offset per second, or None if
        fewer than two points are recorded."""
        coeffs = self._fit()
        return None if coeffs is None else coeffs[0]

    def predict(self, time: float) -> Optional[float]:
        """Extrapolated offset at ``time``, or None if unfit."""
        coeffs = self._fit()
        if coeffs is None:
            return None
        slope, intercept = coeffs
        return slope * time + intercept

    def squared_errors(self) -> np.ndarray:
        """Squared residuals of the recorded points against the fit."""
        coeffs = self._fit()
        if coeffs is None or not self._times:
            return np.asarray([])
        slope, intercept = coeffs
        t = np.asarray(self._times)
        o = np.asarray(self._offsets)
        resid = o - (slope * t + intercept)
        return resid**2

    def residual_stats(self) -> Tuple[float, float]:
        """(mean, std) of the squared residuals; (0, 0) when unfit."""
        errs = self.squared_errors()
        if errs.size == 0:
            return 0.0, 0.0
        return float(errs.mean()), float(errs.std())

    def points(self) -> "Tuple[List[float], List[float]]":
        """Copies of the recorded (times, offsets)."""
        return list(self._times), list(self._offsets)

"""Text rendering for tables and series (no plotting dependency)."""

from repro.reporting.tables import render_table
from repro.reporting.series import render_series, render_cdf

__all__ = ["render_table", "render_series", "render_cdf"]

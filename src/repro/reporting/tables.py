"""Fixed-width table renderer for bench output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple aligned text table.

    Numbers are right-aligned, everything else left-aligned.  Returns a
    string including a header separator line.
    """
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    columns = len(headers)
    for row in str_rows:
        if len(row) != columns:
            raise ValueError("row width does not match header width")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def is_numeric(col: int) -> bool:
        return all(_looks_numeric(row[col]) for row in str_rows) and bool(str_rows)

    numeric = [is_numeric(i) for i in range(columns)]

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if numeric[i]:
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = [render_row(list(headers))]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def _looks_numeric(text: str) -> bool:
    try:
        float(text.replace(",", ""))
        return True
    except ValueError:
        return False

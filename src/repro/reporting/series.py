"""Text rendering of time series and CDFs.

The paper's figures are scatter/line plots; with no plotting library
available offline, the benches render each series as a compact text
sparkline (binned max-|value| so spikes stay visible) plus the summary
numbers EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import List, Sequence

_BLOCKS = " ▁▂▃▄▅▆▇█"


def render_series(
    values: Sequence[float],
    label: str = "",
    width: int = 72,
    unit_scale: float = 1000.0,
    unit: str = "ms",
) -> str:
    """Render a sparkline of ``values`` (absolute, max-binned to width).

    Args:
        values: Raw series (e.g. offsets in seconds).
        label: Prefix label.
        width: Character width of the sparkline.
        unit_scale: Multiplier applied before display (s -> ms default).
        unit: Unit suffix shown with the max annotation.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    abs_vals = [abs(v) for v in values]
    if not abs_vals:
        return f"{label}: (empty)"
    binned = _bin_max(abs_vals, width)
    peak = max(binned) or 1.0
    chars = []
    for v in binned:
        idx = int(round(v / peak * (len(_BLOCKS) - 1)))
        chars.append(_BLOCKS[idx])
    scaled_peak = peak * unit_scale
    return f"{label}: |{''.join(chars)}| peak={scaled_peak:.1f}{unit} n={len(values)}"


def render_cdf(
    values: Sequence[float],
    label: str = "",
    quantiles: Sequence[float] = (0.10, 0.25, 0.50, 0.75, 0.90, 0.99),
    unit_scale: float = 1000.0,
    unit: str = "ms",
) -> str:
    """Render a CDF as its key quantiles on one line."""
    import numpy as np

    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return f"{label}: (empty)"
    parts = [
        f"p{int(q * 100):02d}={float(np.quantile(arr, q)) * unit_scale:.1f}{unit}"
        for q in quantiles
    ]
    return f"{label}: " + "  ".join(parts)


def _bin_max(values: List[float], width: int) -> List[float]:
    if len(values) <= width:
        return values
    out = []
    n = len(values)
    for i in range(width):
        lo = i * n // width
        hi = max(lo + 1, (i + 1) * n // width)
        out.append(max(values[lo:hi]))
    return out

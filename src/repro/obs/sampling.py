"""Deterministic trace sampling and reservoir exemplars.

Population-scale runs cannot retain every exchange's causal tree, but
they must stay byte-deterministic per seed and keep the error evidence
that :mod:`repro.obs.causal`/:mod:`repro.obs.explain` feed on.  The
sampler therefore makes every keep/drop decision from stable inputs
only — never from :func:`hash` (salted per process) or wall-clock
state:

* An exchange is *kept* when the CRC-32 of its ``trace_id`` selects it
  (1-in-N).  All records of a kept exchange share the trace id, so its
  whole causal tree survives and ``explain`` works unchanged on it.
* Error evidence always survives: ``drop``/``ignored`` records and
  spans whose ``outcome`` is anything but ``"ok"`` are kept regardless
  of the hash, so failures remain attributable at any sampling rate.
* While a fault episode is active (:meth:`TraceSampler.fault_begin` /
  :meth:`TraceSampler.fault_end`, driven by the fault injector) every
  record is kept — fault windows are precisely when full causal
  context is worth the memory.
* Records without a ``trace_id`` (protocol decisions, phase spans,
  interference episodes) are never sampled out; they are few and they
  anchor the run-level narrative.

:class:`Reservoir` keeps a bounded, deterministic sample of histogram
observations ("exemplars").  Entries are ranked by a stable hash key
and the snapshot is emitted in canonical key order, so merging shard
reservoirs (see :mod:`repro.obs.merge`) is a sort-and-truncate that is
order-independent and reduces to the identity for a single shard.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Tuple

__all__ = [
    "DEFAULT_EXEMPLARS",
    "ERROR_KINDS",
    "Reservoir",
    "TraceSampler",
    "stable_hash",
]

#: Default per-histogram exemplar reservoir capacity.
DEFAULT_EXEMPLARS = 10

#: Record kinds that are always kept (error evidence).
ERROR_KINDS = frozenset({"drop", "ignored"})


def stable_hash(text: str) -> int:
    """Process- and run-independent 32-bit hash (CRC-32 of UTF-8)."""
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


class Reservoir:
    """Bounded deterministic sample of (value, ref) observations.

    Each observation gets a stable key hashed from its arrival index,
    value and reference; the reservoir retains the ``capacity`` entries
    with the smallest keys.  Keys are stored in the snapshot so shard
    merges can re-rank the union without re-seeing the stream.
    """

    __slots__ = ("capacity", "seen", "_entries")

    def __init__(self, capacity: int = DEFAULT_EXEMPLARS) -> None:
        if capacity < 1:
            raise ValueError("reservoir capacity must be >= 1")
        self.capacity = int(capacity)
        self.seen = 0
        self._entries: List[Tuple[int, float, str]] = []

    def observe(self, value: float, ref: str = "") -> None:
        """Offer one observation to the reservoir."""
        self.seen += 1
        key = stable_hash(f"{self.seen}:{value!r}:{ref}")
        entry = (key, float(value), str(ref))
        if len(self._entries) < self.capacity:
            self._entries.append(entry)
            self._entries.sort()
        elif entry < self._entries[-1]:
            self._entries[-1] = entry
            self._entries.sort()

    def snapshot(self) -> Dict[str, Any]:
        """Canonical (key-sorted) JSON form of the reservoir."""
        return {
            "capacity": self.capacity,
            "seen": self.seen,
            "entries": [
                {"key": k, "value": v, "ref": r} for k, v, r in self._entries
            ],
        }


class TraceSampler:
    """Deterministic 1-in-N exchange sampler with always-keep rules.

    Args:
        rate: Keep roughly one in ``rate`` exchanges (``1`` keeps all).
        exemplar_capacity: Capacity of each histogram's exemplar
            reservoir.
    """

    def __init__(
        self, rate: int, exemplar_capacity: int = DEFAULT_EXEMPLARS
    ) -> None:
        if rate < 1:
            raise ValueError("sample rate must be >= 1")
        self.rate = int(rate)
        self.exemplar_capacity = int(exemplar_capacity)
        self.fault_depth = 0
        self.kept = 0
        self.dropped = 0
        self._exemplars: Dict[str, Reservoir] = {}

    # -- keep/drop decisions ----------------------------------------------

    def keep_trace(self, trace_id: str) -> bool:
        """Whether the hash selects this exchange's causal tree."""
        return stable_hash(trace_id) % self.rate == 0

    def keep_record(self, kind: str, data: Dict[str, Any]) -> bool:
        """Decide one record's fate; counts the decision either way."""
        trace_id = data.get("trace_id")
        if trace_id is None:
            keep = True
        elif self.rate <= 1 or self.fault_depth > 0:
            keep = True
        elif kind in ERROR_KINDS:
            keep = True
        else:
            outcome = data.get("outcome")
            keep = (
                outcome is not None and outcome != "ok"
            ) or self.keep_trace(str(trace_id))
        if keep:
            self.kept += 1
        else:
            self.dropped += 1
        return keep

    # -- fault-overlap window ---------------------------------------------

    def fault_begin(self) -> None:
        """Enter a fault window: keep everything until it closes."""
        self.fault_depth += 1

    def fault_end(self) -> None:
        """Leave one (possibly nested) fault window."""
        if self.fault_depth > 0:
            self.fault_depth -= 1

    # -- histogram exemplars ----------------------------------------------

    def observe_exemplar(self, name: str, value: float, ref: str = "") -> None:
        """Offer one histogram observation as an exemplar candidate."""
        reservoir = self._exemplars.get(name)
        if reservoir is None:
            reservoir = Reservoir(self.exemplar_capacity)
            self._exemplars[name] = reservoir
        reservoir.observe(value, ref)

    def exemplars_snapshot(self) -> Dict[str, Any]:
        """Canonical JSON form of every exemplar reservoir, name-sorted."""
        return {
            name: self._exemplars[name].snapshot()
            for name in sorted(self._exemplars)
        }

"""Wall-clock timing for CLI and bench layers ONLY.

Everything else in :mod:`repro.obs` runs on simulated time and is
deterministic; :class:`RunTimer` is the one deliberate exception.  It
measures *host* elapsed seconds so the bench harness can record how
long each figure reproduction takes on real hardware — data that must
never flow back into simulation state or seed-keyed telemetry, or
byte-identical replays break.

The DET001 rule forbids wall-clock reads inside simulation packages
(which includes ``obs``); the single suppressed call below is the
boundary where that exception is granted and documented.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional


def _wall_seconds() -> float:
    """Monotonic host seconds — the only wall-clock read in ``obs``."""
    return time.perf_counter()  # repro: noqa[DET001] bench/CLI wall-clock boundary


class RunTimer:
    """Accumulates named wall-clock intervals (bench/CLI layers only).

    Usage::

        timer = RunTimer()
        with timer.measure("bench_fig7"):
            run_the_bench()
        timer.results()  # {"bench_fig7": 1.84}

    Re-measuring a name accumulates into its total.
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._order: List[str] = []

    def measure(self, name: str) -> "_Measurement":
        """Context manager timing one named interval."""
        return _Measurement(self, name)

    def record(self, name: str, seconds: float) -> None:
        """Add an externally-measured duration under ``name``."""
        if seconds < 0:
            raise ValueError("duration cannot be negative")
        if name not in self._totals:
            self._totals[name] = 0.0
            self._order.append(name)
        self._totals[name] += seconds

    def results(self) -> Dict[str, float]:
        """Name -> accumulated seconds, in first-measured order."""
        return {name: self._totals[name] for name in self._order}

    def total(self) -> float:
        """Sum of every recorded interval."""
        return sum(self._totals.values())


class _Measurement:
    """Context manager for one :class:`RunTimer` interval."""

    def __init__(self, timer: RunTimer, name: str) -> None:
        self._timer = timer
        self._name = name
        self._start: Optional[float] = None

    def __enter__(self) -> "_Measurement":
        self._start = _wall_seconds()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._start is not None
        self._timer.record(self._name, _wall_seconds() - self._start)

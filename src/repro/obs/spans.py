"""Span-based tracing over the simulation :class:`TraceLog`.

A *span* is a named interval on the virtual-time axis —
``mntp.warmup``, ``channel.interference``, ``sim.run``.  Completed
spans are appended to the run's existing :class:`TraceLog` as ordinary
records under component :data:`SPAN_COMPONENT` with ``kind`` set to the
span name, so every current trace consumer (the Figure-7 bench, the
tests) keeps working unchanged while exporters gain interval data.

Spans in event-driven code rarely fit a ``with`` block, so the tracer
offers both styles::

    handle = tracer.begin("mntp.warmup")
    ...                       # event callbacks fire
    handle.end(samples=12)

    with tracer.span("tuner.tune"):
        ...

A span that is never ended produces no record (the run stopped mid
flight); :meth:`SpanTracer.end_all` closes stragglers at shutdown.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.simcore.trace import TraceLog, TraceRecord

#: Component name span records are filed under in the TraceLog.
SPAN_COMPONENT = "span"


class Span:
    """One open (or finished) span.

    Attributes:
        name: Span kind (dotted taxonomy, e.g. ``"mntp.warmup"``).
        t0: Virtual time the span opened.
        t1: Virtual time it closed (None while open).
        attrs: Attributes attached at begin/end.
    """

    __slots__ = ("name", "t0", "t1", "attrs", "_tracer")

    def __init__(self, tracer: "SpanTracer", name: str, t0: float, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.t0 = t0
        self.t1: Optional[float] = None
        self.attrs = attrs

    @property
    def open(self) -> bool:
        """Whether the span has not been ended yet."""
        return self.t1 is None

    def end(self, t: Optional[float] = None, **attrs: Any) -> Optional[TraceRecord]:
        """Close the span and emit its record; idempotent.

        The close path is inlined here (rather than delegating to the
        tracer) because every span in the run pays it — one less call
        frame on a path the obs-overhead gate meters.

        Args:
            t: Explicit end time (defaults to the tracer's clock).
            attrs: Extra attributes merged into the span record.
        """
        if self.t1 is not None:
            return None
        tracer = self._tracer
        t0 = self.t0
        t1 = tracer._now_fn() if t is None else float(t)
        if t1 < t0:
            t1 = t0
        self.t1 = t1
        span_attrs = self.attrs
        if attrs:
            span_attrs.update(attrs)
        tracer._open.pop(id(self), None)
        sink = tracer._sink
        if sink is not None:
            data = {"t0": t0, "t1": t1, "dur": t1 - t0}
            if span_attrs:
                data.update(span_attrs)
            sink.emit(t0, SPAN_COMPONENT, self.name, data)
            return None
        return tracer.trace.emit(  # repro: noqa[OBS003]
            t0,
            SPAN_COMPONENT,
            self.name,
            t0=t0,
            t1=t1,
            dur=t1 - t0,
            **span_attrs,
        )

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end()


class SpanTracer:
    """Opens and closes spans against a :class:`TraceLog`.

    Args:
        trace: Destination log (shared with the simulation components).
        now_fn: Callable returning the current time on the span axis —
            virtual seconds inside a simulator, a manual tick outside.
        sink: Optional ring-buffer sink; when set, finished spans are
            staged there (batched, sampled) instead of appended to the
            log one by one, and :meth:`Span.end` returns ``None``.
    """

    def __init__(
        self,
        trace: TraceLog,
        now_fn: Callable[[], float],
        sink: Optional[Any] = None,
    ) -> None:
        self.trace = trace
        self._now_fn = now_fn
        self._sink = sink
        # Keyed by id() for O(1) removal on finish; insertion-ordered,
        # so end_all still closes stragglers oldest-first.
        self._open: Dict[int, Span] = {}

    def begin(self, name: str, t: Optional[float] = None, **attrs: Any) -> Span:
        """Open a span named ``name`` at time ``t`` (default: now)."""
        t0 = self._now_fn() if t is None else float(t)
        span = Span(self, name, t0, attrs)
        self._open[id(span)] = span
        return span

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span for use as a context manager."""
        return self.begin(name, **attrs)

    @property
    def open_count(self) -> int:
        """Number of spans currently open."""
        return len(self._open)

    def end_all(self, t: Optional[float] = None) -> int:
        """Close every open span (shutdown path); returns how many."""
        closed = 0
        for span in list(self._open.values()):
            span.end(t=t)
            closed += 1
        return closed

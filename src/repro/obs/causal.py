"""Causal exchange assembly: one tree per SNTP exchange.

The network stack emits linked child spans for every exchange — the
client's ``sntp.exchange`` root, one ``link.transit`` per hop with the
hop delay split into propagation / queueing / interference components,
and the server's ``server.turnaround`` — all carrying the same
``trace_id`` allocated by the client.  Packet drops leave ``drop`` /
``ignored`` trace records with the same id.  This module joins those
records back into :class:`Exchange` objects and attaches the
``channel.interference`` episodes that overlapped each exchange in
time, so a single offset sample can be traced to the physical events
that shaped it (see :mod:`repro.obs.explain` for the attribution step).

Everything operates on the plain-dict telemetry snapshot, so archived
runs are as inspectable as live ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.spans import SPAN_COMPONENT

#: Exchange outcomes where the server answered (a turnaround or a
#: response hop proves the tree is whole even though no sample came out).
_ANSWERED_FAILURES = frozenset(
    {"kod", "unsynchronized", "bad_mode", "malformed", "invalid"}
)

#: Outcomes the client imposed on itself (pending-table eviction); the
#: tree is explained by the client's own bookkeeping, not the network.
_CLIENT_CLOSED = frozenset({"evicted"})


@dataclass(frozen=True)
class Hop:
    """One ``link.transit`` span: a datagram crossing one link.

    The delay components sum to ``dur`` (up to span truncation at the
    run horizon): ``prop_s`` is the propagation floor, ``queue_s`` the
    queueing/contention share, ``intf_s`` the 802.11 retry share caused
    by interference / poor SNR.
    """

    link: str
    ident: int
    trace_id: str
    t0: float
    t1: float
    prop_s: float
    queue_s: float
    intf_s: float

    @property
    def dur(self) -> float:
        """Span duration in seconds."""
        return self.t1 - self.t0


@dataclass(frozen=True)
class Turnaround:
    """One ``server.turnaround`` span: request arrival to reply dispatch."""

    server: str
    trace_id: str
    t0: float
    t1: float
    outcome: Optional[str]

    @property
    def dur(self) -> float:
        """Span duration in seconds."""
        return self.t1 - self.t0


@dataclass(frozen=True)
class InterferenceEpisode:
    """One ``channel.interference`` span."""

    t0: float
    t1: float
    rssi_dip_db: float
    noise_lift_db: float

    @property
    def dur(self) -> float:
        """Episode duration in seconds."""
        return self.t1 - self.t0

    def overlaps(self, t0: float, t1: float) -> bool:
        """Whether the episode intersects the half-open window [t0, t1)."""
        return self.t0 < t1 and self.t1 > t0


@dataclass(frozen=True)
class InjectedFault:
    """One ``fault.episode`` span: an injected fault's active interval.

    Mirrors :class:`repro.faults.schedule.FaultEpisode` as observed in
    telemetry, so archived snapshots explain themselves without the
    schedule that produced them.
    """

    fault: str
    target: str
    direction: str
    t0: float
    t1: float

    @property
    def dur(self) -> float:
        """Episode duration in seconds."""
        return self.t1 - self.t0

    def overlaps(self, t0: float, t1: float) -> bool:
        """Whether the episode intersects the half-open window [t0, t1)."""
        return self.t0 < t1 and self.t1 > t0


@dataclass
class Exchange:
    """One reassembled causal tree rooted at an ``sntp.exchange`` span.

    Attributes:
        trace_id: The exchange's causal id (``<client>/<seq>``).
        client / server: Endpoint labels (server is the pool *member*
            that answered when known, else the name queried).
        t0 / t1: Root span interval (request sent → outcome known).
        outcome: ``ok``, ``timeout``, ``kod``, ``unsynchronized``,
            ``bad_mode``, ``malformed``, ``invalid`` (unusable
            timestamps), ``evicted`` (pending-table overflow) — or
            ``unresolved`` when the run ended with the query still in
            flight.
        offset / delay: The derived sample, for ``ok`` exchanges.
        request_hop / response_hop: The two ``link.transit`` children.
        turnaround: The ``server.turnaround`` child.
        drops: ``drop`` / ``ignored`` trace records with this trace_id.
        interference: Channel episodes overlapping [t0, t1).
        faults: Injected fault episodes overlapping [t0, t1).
    """

    trace_id: str
    client: str
    server: Optional[str]
    t0: float
    t1: float
    outcome: str
    offset: Optional[float] = None
    delay: Optional[float] = None
    request_hop: Optional[Hop] = None
    response_hop: Optional[Hop] = None
    turnaround: Optional[Turnaround] = None
    drops: List[Dict[str, Any]] = field(default_factory=list)
    interference: List[InterferenceEpisode] = field(default_factory=list)
    faults: List[InjectedFault] = field(default_factory=list)

    @property
    def dur(self) -> float:
        """Root span duration in seconds."""
        return self.t1 - self.t0

    @property
    def complete(self) -> bool:
        """Whether the causal tree fully explains the outcome.

        * ``ok`` — both hops and the server turnaround are present.
        * ``timeout`` — a drop record names the lost packet, or the
          full round trip is present (the reply simply arrived after
          the client's timer).
        * answered failures (``kod``, ``unsynchronized``, ...) — the
          server's side of the tree is present.
        * ``evicted`` — always complete: the client closed the exchange
          itself to bound its pending table.
        * ``unresolved`` — never complete.
        """
        whole_round_trip = (
            self.request_hop is not None
            and self.response_hop is not None
            and self.turnaround is not None
        )
        if self.outcome == "ok":
            return whole_round_trip
        if self.outcome == "timeout":
            return bool(self.drops) or whole_round_trip
        if self.outcome in _ANSWERED_FAILURES:
            return self.turnaround is not None or self.response_hop is not None
        if self.outcome in _CLIENT_CLOSED:
            return True
        return False


def _hop_from(data: Dict[str, Any]) -> Hop:
    return Hop(
        link=str(data.get("link", "?")),
        ident=int(data.get("ident", 0)),
        trace_id=str(data.get("trace_id")),
        t0=float(data["t0"]),
        t1=float(data["t1"]),
        prop_s=float(data.get("prop_s", 0.0)),
        queue_s=float(data.get("queue_s", 0.0)),
        intf_s=float(data.get("intf_s", 0.0)),
    )


def assemble_exchanges(snapshot: Dict[str, Any]) -> List[Exchange]:
    """Rebuild every exchange's causal tree from a telemetry snapshot.

    Returns exchanges in root-span emission order (deterministic for a
    given snapshot).  Exchanges the run cut off mid-flight come back
    with ``outcome="unresolved"``.
    """
    roots: List[Dict[str, Any]] = []
    hops: Dict[str, List[Hop]] = {}
    turnarounds: Dict[str, Turnaround] = {}
    drops: Dict[str, List[Dict[str, Any]]] = {}
    episodes: List[InterferenceEpisode] = []
    faults: List[InjectedFault] = []

    for record in snapshot.get("records", []):
        data = record.get("data", {})
        kind = record.get("kind")
        if record.get("component") == SPAN_COMPONENT:
            if kind == "sntp.exchange":
                roots.append(record)
            elif kind == "link.transit" and data.get("trace_id") is not None:
                hops.setdefault(str(data["trace_id"]), []).append(_hop_from(data))
            elif kind == "server.turnaround" and data.get("trace_id") is not None:
                turnarounds[str(data["trace_id"])] = Turnaround(
                    server=str(data.get("server", "?")),
                    trace_id=str(data["trace_id"]),
                    t0=float(data["t0"]),
                    t1=float(data["t1"]),
                    outcome=data.get("outcome"),
                )
            elif kind == "channel.interference":
                episodes.append(
                    InterferenceEpisode(
                        t0=float(data["t0"]),
                        t1=float(data["t1"]),
                        rssi_dip_db=float(data.get("rssi_dip_db", 0.0)),
                        noise_lift_db=float(data.get("noise_lift_db", 0.0)),
                    )
                )
            elif kind == "fault.episode":
                faults.append(
                    InjectedFault(
                        fault=str(data.get("fault", "?")),
                        target=str(data.get("target", "*")),
                        direction=str(data.get("direction", "both")),
                        t0=float(data["t0"]),
                        t1=float(data["t1"]),
                    )
                )
        elif kind in ("drop", "ignored") and data.get("trace_id") is not None:
            drops.setdefault(str(data["trace_id"]), []).append(
                {
                    "t": record.get("t"),
                    "component": record.get("component"),
                    "kind": kind,
                    "ident": data.get("ident"),
                }
            )

    exchanges: List[Exchange] = []
    for record in roots:
        data = record["data"]
        trace_id = str(data.get("trace_id"))
        exchange = Exchange(
            trace_id=trace_id,
            client=str(data.get("client", "?")),
            server=data.get("server"),
            t0=float(data["t0"]),
            t1=float(data["t1"]),
            outcome=str(data.get("outcome", "unresolved")),
            offset=data.get("offset"),
            delay=data.get("delay"),
            turnaround=turnarounds.get(trace_id),
            drops=drops.get(trace_id, []),
        )
        for hop in sorted(hops.get(trace_id, []), key=lambda h: h.t0):
            # Links are named by direction ("up:<server>" toward the
            # server, "down:<server>" back); fall back to arrival order
            # for topologies with other naming.
            if hop.link.startswith("up:"):
                exchange.request_hop = exchange.request_hop or hop
            elif hop.link.startswith("down:"):
                exchange.response_hop = exchange.response_hop or hop
            elif exchange.request_hop is None:
                exchange.request_hop = hop
            else:
                exchange.response_hop = exchange.response_hop or hop
        exchange.interference = [
            ep for ep in episodes if ep.overlaps(exchange.t0, exchange.t1)
        ]
        exchange.faults = [
            f for f in faults if f.overlaps(exchange.t0, exchange.t1)
        ]
        exchanges.append(exchange)
    return exchanges


def completeness(exchanges: List[Exchange]) -> float:
    """Fraction of exchanges whose causal tree is complete (1.0 if none)."""
    if not exchanges:
        return 1.0
    return sum(1 for e in exchanges if e.complete) / len(exchanges)

"""Streaming run-health SLO monitor ("is this run inside its envelope?").

The paper's core claim is distributional — MNTP holds the offset error
inside a tight envelope where SNTP degrades — so a run's health is a
*continuous* property, not a one-shot verdict.  :class:`HealthMonitor`
watches a run incrementally (fed from the experiment loop or replayed
from an archived telemetry snapshot) and judges four windowed signals
against a declarative :class:`SloSpec`:

* ``p99_abs_error_ms`` — p99 of |offset error| over the sliding window
  (|offset| when no ground truth is available for a sample);
* ``drop_rate_ratio`` — failed / attempted exchanges in the window;
* ``starvation_s`` — the oldest per-client age since the last accepted
  sample;
* ``exchange_rate_per_s`` — attempted exchanges per second (disabled
  unless the spec sets a positive threshold).

Evaluations drive a deterministic state machine (``ok`` → ``degraded``
→ ``violated`` → ``recovered``); every state change is recorded as a
``health.transition`` span through the OBS003-sanctioned emission path,
annotated with whether it happened inside a fault-injection window (or
its grace period) so an expected in-episode violation is distinguished
from a real one.  :meth:`HealthMonitor.report` freezes everything into
the ``mntp-health-report-v1`` verdict document, and
:func:`replay_health` rebuilds the same report from an archived
snapshot — same seed, same report, byte for byte.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, fields
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

from repro.obs.causal import assemble_exchanges

#: Format tag of the frozen verdict document.
HEALTH_FORMAT = "mntp-health-report-v1"

#: The monitor's states, in escalation order.
HEALTH_STATES = ("ok", "degraded", "violated", "recovered")

#: Signal evaluation order (deterministic tripping-signal tie-break).
#: Each entry: (signal name, warn field, violate field, low_is_bad).
_SIGNALS = (
    ("p99_abs_error_ms", "p99_abs_error_warn_ms",
     "p99_abs_error_violate_ms", False),
    ("drop_rate_ratio", "drop_rate_warn_ratio",
     "drop_rate_violate_ratio", False),
    ("starvation_s", "starvation_warn_s", "starvation_violate_s", False),
    ("exchange_rate_per_s", "exchange_rate_warn_per_s",
     "exchange_rate_violate_per_s", True),
)


@dataclass(frozen=True)
class SloSpec:
    """Declarative SLO thresholds; every threshold carries its unit.

    JSON-round-trippable (:meth:`to_json` / :meth:`from_json`); unknown
    fields are rejected on load so a typo'd spec fails loudly instead
    of silently gating nothing.  ``exchange_rate_*_per_s`` at 0 disables
    the rate signal (a run's natural cadence is scenario-specific).
    """

    window_s: float = 300.0
    eval_interval_s: float = 60.0
    min_samples: int = 5
    p99_abs_error_warn_ms: float = 50.0
    p99_abs_error_violate_ms: float = 200.0
    drop_rate_warn_ratio: float = 0.10
    drop_rate_violate_ratio: float = 0.50
    starvation_warn_s: float = 120.0
    starvation_violate_s: float = 600.0
    exchange_rate_warn_per_s: float = 0.0
    exchange_rate_violate_per_s: float = 0.0
    fault_grace_s: float = 90.0

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.eval_interval_s <= 0:
            raise ValueError("eval_interval_s must be positive")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.fault_grace_s < 0:
            raise ValueError("fault_grace_s must be non-negative")
        for _signal, warn_field, violate_field, low_is_bad in _SIGNALS:
            warn = getattr(self, warn_field)
            violate = getattr(self, violate_field)
            if warn < 0 or violate < 0:
                raise ValueError(f"{warn_field}/{violate_field} must be >= 0")
            if low_is_bad:
                if violate > warn:
                    raise ValueError(
                        f"{violate_field} must not exceed {warn_field} "
                        "(lower rates are worse)"
                    )
            elif warn > violate:
                raise ValueError(
                    f"{warn_field} must not exceed {violate_field}"
                )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready field mapping (declaration order)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SloSpec":
        """Rebuild a spec; unknown keys raise ``ValueError``."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown SloSpec fields: {unknown}")
        return cls(**data)

    def to_json(self) -> str:
        """Canonical JSON encoding."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "SloSpec":
        """Parse :meth:`to_json` output (unknown fields rejected)."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("SloSpec JSON must be an object")
        return cls.from_dict(data)


def _round(value: Optional[float], digits: int = 6) -> Optional[float]:
    """Stable float rounding for report/transition payloads."""
    return None if value is None else round(float(value), digits)


def _p99(values: List[float]) -> float:
    """Empirical 99th percentile (nearest-rank) of a non-empty list."""
    ranked = sorted(values)
    index = min(len(ranked) - 1, max(0, int(0.99 * len(ranked) + 0.5) - 1))
    return ranked[index]


class HealthMonitor:
    """Streaming SLO evaluation over a sliding window.

    Args:
        spec: Thresholds to judge against (defaults apply when None).
        telemetry: When given (the live run loop passes the
            simulator's bundle), transitions are also emitted as
            ``health.transition`` spans and counters through the
            ring-buffered path, so the monitor stays OBS003-clean and
            inside the obs-overhead gate.  Replay monitors omit it.
    """

    def __init__(
        self,
        spec: Optional[SloSpec] = None,
        telemetry: Optional[Any] = None,
    ) -> None:
        self.spec = spec if spec is not None else SloSpec()
        self._telemetry = telemetry
        self.state = "ok"
        self.transitions: List[Dict[str, Any]] = []
        self.exchanges = 0
        self.failures = 0
        self.evaluations = 0
        self._samples: Deque[Tuple[float, float]] = deque()
        self._attempts: Deque[Tuple[float, bool]] = deque()
        self._first_seen: Dict[str, float] = {}
        self._last_ok: Dict[str, float] = {}
        self._t_first: Optional[float] = None
        self._fault_depth = 0
        self._last_fault_end: Optional[float] = None
        self._violations_in_fault = 0
        self._violations_outside_fault = 0
        self._degraded_outside_fault = 0
        self._worst: Dict[str, Optional[float]] = {
            "p99_abs_error_ms": None,
            "drop_rate_ratio": None,
            "starvation_s": None,
            "min_exchange_rate_per_s": None,
        }

    # -- feed --------------------------------------------------------------

    def observe_exchange(
        self,
        t: float,
        client: str,
        ok: bool,
        offset_s: Optional[float] = None,
        error_s: Optional[float] = None,
    ) -> None:
        """Record one exchange outcome.

        ``error_s`` (offset + truth) feeds the p99 signal when ground
        truth is known; otherwise the raw ``offset_s`` stands in, so
        the monitor degrades gracefully on truth-free runs.
        """
        t = float(t)
        if self._t_first is None:
            self._t_first = t
        self.exchanges += 1
        self._attempts.append((t, bool(ok)))
        self._first_seen.setdefault(client, t)
        if ok:
            self._last_ok[client] = t
            value = error_s if error_s is not None else offset_s
            if value is not None:
                self._samples.append((t, abs(float(value)) * 1e3))
        else:
            self.failures += 1

    def fault_begin(self, t: float) -> None:
        """A fault-injection episode opened (episodes may overlap)."""
        self._fault_depth += 1

    def fault_end(self, t: float) -> None:
        """A fault-injection episode closed; its grace period starts."""
        self._fault_depth = max(0, self._fault_depth - 1)
        t = float(t)
        if self._last_fault_end is None or t > self._last_fault_end:
            self._last_fault_end = t

    def in_fault_window(self, t: float) -> bool:
        """Whether ``t`` falls in an episode or its grace period."""
        if self._fault_depth > 0:
            return True
        return (
            self._last_fault_end is not None
            and float(t) <= self._last_fault_end + self.spec.fault_grace_s
        )

    # -- evaluation --------------------------------------------------------

    def _prune(self, t: float) -> None:
        horizon = t - self.spec.window_s
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()
        while self._attempts and self._attempts[0][0] < horizon:
            self._attempts.popleft()

    def _signals(self, t: float) -> Dict[str, Optional[float]]:
        spec = self.spec
        p99 = (
            _p99([v for _t, v in self._samples])
            if len(self._samples) >= spec.min_samples
            else None
        )
        drop: Optional[float] = None
        if len(self._attempts) >= spec.min_samples:
            failed = sum(1 for _t, ok in self._attempts if not ok)
            drop = failed / len(self._attempts)
        starvation: Optional[float] = None
        for client in sorted(self._first_seen):
            last = self._last_ok.get(client, self._first_seen[client])
            age = t - last
            if starvation is None or age > starvation:
                starvation = age
        rate: Optional[float] = None
        if self._t_first is not None:
            covered = min(spec.window_s, t - self._t_first)
            if covered > 0:
                rate = len(self._attempts) / covered
        return {
            "p99_abs_error_ms": p99,
            "drop_rate_ratio": drop,
            "starvation_s": starvation,
            "exchange_rate_per_s": rate,
        }

    def _judge(
        self, signals: Dict[str, Optional[float]]
    ) -> Tuple[str, Optional[str], Optional[float], Optional[float]]:
        """(level, tripping signal, value, threshold) for one evaluation."""
        worst = ("ok", None, None, None)
        for signal, warn_field, violate_field, low_is_bad in _SIGNALS:
            value = signals.get(signal)
            if value is None:
                continue
            warn = getattr(self.spec, warn_field)
            violate = getattr(self.spec, violate_field)
            if low_is_bad:
                if violate <= 0:
                    continue  # the rate signal is opt-in
                tripped = (
                    "violated" if value < violate
                    else "degraded" if value < warn
                    else "ok"
                )
            else:
                tripped = (
                    "violated" if value >= violate
                    else "degraded" if value >= warn
                    else "ok"
                )
            if tripped == "violated":
                return ("violated", signal, value, violate)
            if tripped == "degraded" and worst[0] == "ok":
                worst = ("degraded", signal, value, warn)
        return worst

    def _track_worst(self, signals: Dict[str, Optional[float]]) -> None:
        for key in ("p99_abs_error_ms", "drop_rate_ratio", "starvation_s"):
            value = signals.get(key)
            if value is None:
                continue
            seen = self._worst[key]
            if seen is None or value > seen:
                self._worst[key] = value
        rate = signals.get("exchange_rate_per_s")
        if rate is not None:
            seen = self._worst["min_exchange_rate_per_s"]
            if seen is None or rate < seen:
                self._worst["min_exchange_rate_per_s"] = rate

    def _transition(
        self,
        t: float,
        to_state: str,
        signal: Optional[str],
        value: Optional[float],
        threshold: Optional[float],
        in_fault: bool,
    ) -> None:
        entry = {
            "t": _round(t),
            "from": self.state,
            "to": to_state,
            "signal": signal,
            "value": _round(value),
            "threshold": _round(threshold),
            "in_fault_window": in_fault,
        }
        self.transitions.append(entry)
        telemetry = self._telemetry
        if telemetry is not None:
            span = telemetry.spans.begin(
                "health.transition",
                from_state=self.state,
                to_state=to_state,
                signal=signal,
                value=_round(value),
                threshold=_round(threshold),
                in_fault_window=in_fault,
            )
            span.end()
            telemetry.count("health_transitions_total")
        self.state = to_state

    def evaluate(self, t: float) -> Dict[str, Any]:
        """Judge the window ending at ``t``; returns the evaluation row.

        Drives the state machine: a healthy evaluation after a
        degraded/violated stretch lands on ``recovered`` first, then
        settles back to ``ok`` on the next healthy evaluation.
        """
        t = float(t)
        self.evaluations += 1
        if self._telemetry is not None:
            self._telemetry.count("health_evaluations_total")
        self._prune(t)
        signals = self._signals(t)
        self._track_worst(signals)
        level, signal, value, threshold = self._judge(signals)
        in_fault = self.in_fault_window(t)
        if level == "violated":
            if in_fault:
                self._violations_in_fault += 1
            else:
                self._violations_outside_fault += 1
        elif level == "degraded" and not in_fault:
            self._degraded_outside_fault += 1
        if level == "ok":
            if self.state in ("degraded", "violated"):
                self._transition(t, "recovered", None, None, None, in_fault)
            elif self.state == "recovered":
                self._transition(t, "ok", None, None, None, in_fault)
        elif level != self.state:
            self._transition(t, level, signal, value, threshold, in_fault)
        return {
            "t": _round(t),
            "state": self.state,
            "level": level,
            "signal": signal,
            "in_fault_window": in_fault,
            "signals": {k: _round(v) for k, v in signals.items()},
        }

    # -- verdict -----------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        """Freeze the run's health into ``mntp-health-report-v1``."""
        counts: Dict[str, int] = {}
        for tr in self.transitions:
            key = f"{tr['from']}->{tr['to']}"
            counts[key] = counts.get(key, 0) + 1
        if self._violations_outside_fault > 0:
            verdict = "violated"
        elif self._degraded_outside_fault > 0:
            verdict = "degraded"
        else:
            verdict = "pass"
        return {
            "format": HEALTH_FORMAT,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "verdict": verdict,
            "exchanges": self.exchanges,
            "failures": self.failures,
            "evaluations": self.evaluations,
            "transitions": list(self.transitions),
            "transition_counts": dict(sorted(counts.items())),
            "violations_in_fault": self._violations_in_fault,
            "violations_outside_fault": self._violations_outside_fault,
            "worst": {k: _round(v) for k, v in self._worst.items()},
        }


def smoke_spec() -> SloSpec:
    """The SLO spec of the ``health --smoke`` CI gate.

    Tuned to the ``chaos_smoke`` scenario: a window short enough to
    flush fault-era samples soon after each episode, and a grace period
    covering the post-episode settling, so the gate demonstrates the
    full ok → degraded/violated → recovered cycle with every violation
    annotated as in-fault.
    """
    return SloSpec(
        window_s=120.0,
        fault_grace_s=120.0,
        drop_rate_warn_ratio=0.2,
        drop_rate_violate_ratio=0.5,
    )


def recovered_transitions(report: Dict[str, Any]) -> int:
    """How many transitions in a report landed on ``recovered``."""
    return sum(
        count
        for key, count in report.get("transition_counts", {}).items()
        if key.endswith("->recovered")
    )


def render_health_text(report: Dict[str, Any]) -> str:
    """Human-readable report (the CLI prints this verbatim)."""
    worst = report["worst"]

    def fmt(value: Optional[float], unit: str) -> str:
        return "n/a" if value is None else f"{value:.2f}{unit}"

    lines = [
        f"verdict: {report['verdict']}  (final state: {report['state']})",
        f"exchanges: {report['exchanges']} "
        f"({report['failures']} failed), "
        f"{report['evaluations']} evaluations",
        "worst: "
        f"p99|err|={fmt(worst['p99_abs_error_ms'], 'ms')} "
        f"drop={fmt(worst['drop_rate_ratio'], '')} "
        f"starvation={fmt(worst['starvation_s'], 's')} "
        f"min-rate={fmt(worst['min_exchange_rate_per_s'], '/s')}",
        f"violations: {report['violations_outside_fault']} outside fault "
        f"windows, {report['violations_in_fault']} inside (annotated)",
    ]
    if report["transitions"]:
        lines.append("")
        lines.append("transitions:")
        for tr in report["transitions"]:
            cause = ""
            if tr["signal"] is not None:
                cause = f"  {tr['signal']}={tr['value']} (>= {tr['threshold']})"
                sig = tr["signal"]
                if sig == "exchange_rate_per_s":
                    cause = (
                        f"  {sig}={tr['value']} (< {tr['threshold']})"
                    )
            fault = "  [fault window]" if tr["in_fault_window"] else ""
            lines.append(
                f"  t={tr['t']:9.2f}  {tr['from']} -> {tr['to']}{cause}{fault}"
            )
    else:
        lines.append("no state transitions (run stayed ok)")
    return "\n".join(lines)


# -- replay from archived telemetry ---------------------------------------


def _truth_table(
    samples: Optional[Iterable[Any]],
) -> Dict[Tuple[float, float], float]:
    """(time, offset) -> truth, mirroring the explain engine's join."""
    table: Dict[Tuple[float, float], float] = {}
    if samples is None:
        return table
    for sample in samples:
        if hasattr(sample, "time"):
            time, offset, truth = sample.time, sample.offset, sample.truth
        else:
            time, offset, truth = sample
        if truth is not None and truth == truth:  # skip None / NaN
            table[(float(time), float(offset))] = float(truth)
    return table


def replay_health(
    snapshot: Dict[str, Any],
    samples: Optional[Iterable[Any]] = None,
    spec: Optional[SloSpec] = None,
) -> HealthMonitor:
    """Drive a monitor from an archived telemetry snapshot.

    Exchanges come from the causal assembler, truth is joined by exact
    ``(time, offset)`` like the explain engine, fault windows come from
    the archived ``fault.episode`` spans, and evaluations tick on the
    spec's cadence — so replaying an archive reproduces the live
    monitor's report deterministically.
    """
    monitor = HealthMonitor(spec=spec)
    truths = _truth_table(samples)
    # Priorities order same-instant events: episodes open before the
    # exchanges they explain, evaluations see the exchanges of their
    # instant, and episodes close after the evaluation (so an eval at
    # the boundary still counts as inside the window).
    events: List[Tuple[float, int, int, Any]] = []
    seq = 0
    for exchange in assemble_exchanges(snapshot):
        ok = exchange.outcome == "ok" and exchange.offset is not None
        truth = (
            truths.get((exchange.t1, exchange.offset))
            if exchange.offset is not None
            else None
        )
        error = (
            exchange.offset + truth
            if ok and truth is not None
            else None
        )
        events.append((
            exchange.t1, 1, seq,
            ("exchange", exchange.client, ok, exchange.offset, error),
        ))
        seq += 1
    horizon = 0.0
    for record in snapshot.get("records", []):
        horizon = max(horizon, float(record.get("t", 0.0)))
        if record.get("component") != "span":
            continue
        if record.get("kind") != "fault.episode":
            continue
        data = record.get("data", {})
        t0, t1 = float(data["t0"]), float(data["t1"])
        events.append((t0, 0, seq, ("fault_begin",)))
        seq += 1
        events.append((t1, 3, seq, ("fault_end",)))
        seq += 1
    interval = monitor.spec.eval_interval_s
    tick = interval
    while tick <= horizon:
        events.append((tick, 2, seq, ("evaluate",)))
        seq += 1
        tick += interval
    if horizon > 0 and (tick - interval) < horizon:
        events.append((horizon, 2, seq, ("evaluate",)))
    for t, _prio, _seq, action in sorted(events, key=lambda e: e[:3]):
        kind = action[0]
        if kind == "exchange":
            _k, client, ok, offset, error = action
            monitor.observe_exchange(
                t, client, ok, offset_s=offset, error_s=error
            )
        elif kind == "fault_begin":
            monitor.fault_begin(t)
        elif kind == "fault_end":
            monitor.fault_end(t)
        else:
            monitor.evaluate(t)
    return monitor

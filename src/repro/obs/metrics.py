"""Deterministic metrics primitives: counter, gauge, histogram.

Metrics carry *no* timestamps of their own — they are pure accumulators
fed by simulation components, so a registry snapshot is a deterministic
function of the run's seed.  Wall-clock measurement lives in
:mod:`repro.obs.runtimer` and is reserved for CLI/bench layers.

Names follow the Prometheus convention (``mntp_offset_accepted_total``,
``mntp_abs_residual_ms``); :func:`repro.obs.exporters.render_prometheus`
renders a snapshot in the text exposition format.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Sequence, Union

#: Legal metric names (the Prometheus identifier grammar).
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default histogram bucket upper bounds; callers with a known value
#: range (e.g. millisecond residuals) should pass their own.
DEFAULT_BUCKETS = (0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0)


class Metric:
    """Base class: a named, typed accumulator inside a registry."""

    #: Type tag used in snapshots and the Prometheus exposition.
    metric_type = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serialisable state of this metric."""
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing count (``*_total`` by convention)."""

    metric_type = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        """Name, type, help, and current value."""
        return {
            "name": self.name,
            "type": self.metric_type,
            "help": self.help,
            "value": self.value,
        }


class Gauge(Metric):
    """A value that can go up and down (last-write-wins)."""

    metric_type = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self.value = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = float(value)
        self.updates += 1

    def add(self, amount: float) -> None:
        """Adjust the gauge by ``amount`` (either sign)."""
        self.value += amount
        self.updates += 1

    def snapshot(self) -> Dict[str, Any]:
        """Name, type, help, value, and update count."""
        return {
            "name": self.name,
            "type": self.metric_type,
            "help": self.help,
            "value": self.value,
            "updates": self.updates,
        }


class Histogram(Metric):
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches
    everything else.  ``observe`` is O(len(buckets)).
    """

    metric_type = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds: List[float] = bounds
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative_counts(self) -> List[int]:
        """Bucket counts accumulated in bound order (Prometheus ``le``)."""
        out: List[int] = []
        running = 0
        for count in self.bucket_counts:
            running += count
            out.append(running)
        return out

    def snapshot(self) -> Dict[str, Any]:
        """Name, type, help, bounds, per-bucket counts, sum, count."""
        return {
            "name": self.name,
            "type": self.metric_type,
            "help": self.help,
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Get-or-create home for every metric of one run.

    Components call :meth:`counter` / :meth:`gauge` / :meth:`histogram`
    at use sites; re-requesting an existing name returns the same
    object, and requesting it as a different type is an error (two
    components silently sharing a name is a telemetry bug).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def _get_or_create(self, cls, name: str, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.metric_type}, not {cls.metric_type}"
                )
            return existing
        metric = cls(name, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help=help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help=help)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create a :class:`Histogram`."""
        return self._get_or_create(Histogram, name, help=help, buckets=buckets)  # type: ignore[return-value]

    def get(self, name: str) -> Optional[Metric]:
        """The metric registered under ``name``, or None."""
        return self._metrics.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """Scalar value of a counter/gauge (``default`` if absent)."""
        metric = self._metrics.get(name)
        value = getattr(metric, "value", None)
        return default if value is None else float(value)

    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def snapshot(self) -> List[Dict[str, Any]]:
        """Every metric's snapshot, sorted by name (deterministic)."""
        return [self._metrics[name].snapshot() for name in sorted(self._metrics)]


#: Union of the concrete metric classes (typing convenience).
AnyMetric = Union[Counter, Gauge, Histogram]

"""Canonical diff of two telemetry snapshots ("what moved, and why?").

Two same-seed runs produce byte-identical telemetry, so *any*
difference between two snapshots is a real behavioural change — a code
change, a config change, or a different seed.  This module computes a
deterministic, JSON-round-trippable diff document
(``mntp-telemetry-diff-v1``) over two snapshots (bare, shard-enveloped,
merged multi-shard, or full experiment archives):

* counter / gauge deltas and new / removed metric series,
* histogram count, sum and estimated p50/p90/p99 quantile shifts,
* per-span-kind count and duration regressions,
* per-(component, kind) record-count shifts,

and — joined with :mod:`repro.obs.causal` / :mod:`repro.obs.explain` —
ranks the **top suspect components** for an offset or throughput
movement: which named cause (interference, queueing, asymmetry, server
turnaround), outcome class, span kind or counter moved the most,
relative to its baseline magnitude.  ``scripts/bench.py`` uses exactly
this ranking to triage a tripped throughput gate automatically.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.explain import CAUSES, explain_run
from repro.obs.merge import SHARD_FORMAT
from repro.obs.spans import SPAN_COMPONENT
from repro.obs.telemetry import TELEMETRY_FORMAT

#: Format tag of the diff document.
DIFF_FORMAT = "mntp-telemetry-diff-v1"

#: Experiment archive format accepted by :func:`coerce_snapshot`.
_EXPERIMENT_FORMAT = "mntp-experiment-v1"

#: Quantiles estimated from cumulative histogram buckets.
_QUANTILES = (0.5, 0.9, 0.99)

#: Relative-change denominator floor (avoids divide-by-zero blowups).
_EPSILON = 1e-9


def coerce_snapshot(
    document: Dict[str, Any],
) -> Tuple[Dict[str, Any], Optional[List[Tuple[float, float, float]]]]:
    """(snapshot, truth samples) from any diffable document.

    Accepts a bare ``mntp-telemetry-v1`` snapshot (including merged
    multi-shard ones — the merge emits the same format), a
    ``mntp-telemetry-shard-v1`` envelope, or a full
    ``mntp-experiment-v1`` archive; the archive also yields its
    truth-bearing SNTP samples so suspect ranking can use the error
    decomposition, not just raw offsets.

    Raises:
        ValueError: If the document is none of those formats, or an
            experiment archive carries no telemetry.
    """
    fmt = document.get("format")
    if fmt == TELEMETRY_FORMAT:
        return document, None
    if fmt == SHARD_FORMAT:
        snapshot = document.get("snapshot", {})
        if snapshot.get("format") != TELEMETRY_FORMAT:
            raise ValueError("shard envelope without a telemetry snapshot")
        return snapshot, None
    if fmt == _EXPERIMENT_FORMAT:
        snapshot = document.get("telemetry")
        if not isinstance(snapshot, dict):
            raise ValueError(
                f"{_EXPERIMENT_FORMAT} archive carries no telemetry snapshot"
            )
        samples = [
            (float(p["t"]), float(p["o"]), float(p["truth"]))
            for p in document.get("sntp", [])
            if "truth" in p
        ]
        return snapshot, samples or None
    raise ValueError(
        f"cannot diff a {fmt!r} document (expected {TELEMETRY_FORMAT}, "
        f"{SHARD_FORMAT} or {_EXPERIMENT_FORMAT})"
    )


def _round(value: float, digits: int = 6) -> float:
    return round(float(value), digits)


# -- metric tables ---------------------------------------------------------


def _metric_table(snapshot: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    return {m["name"]: m for m in snapshot.get("metrics", [])}


def _histogram_quantile(metric: Dict[str, Any], q: float) -> Optional[float]:
    """Upper-bound quantile estimate from cumulative buckets.

    Deterministic and conservative: the estimate is the upper bound of
    the first bucket whose cumulative count reaches the rank (the +Inf
    bucket reports the largest finite bound — a floor, not a value).
    """
    count = int(metric.get("count", 0))
    if count <= 0:
        return None
    bounds = list(metric.get("bounds", []))
    bucket_counts = list(metric.get("bucket_counts", []))
    rank = q * count
    running = 0
    for i, bucket in enumerate(bucket_counts):
        running += bucket
        if running >= rank and running > 0:
            return bounds[i] if i < len(bounds) else bounds[-1]
    return bounds[-1] if bounds else None


def _diff_metrics(
    a: Dict[str, Any], b: Dict[str, Any]
) -> Dict[str, Any]:
    table_a, table_b = _metric_table(a), _metric_table(b)
    counters: List[Dict[str, Any]] = []
    gauges: List[Dict[str, Any]] = []
    histograms: List[Dict[str, Any]] = []
    for name in sorted(set(table_a) & set(table_b)):
        ma, mb = table_a[name], table_b[name]
        kind = ma.get("type")
        if kind != mb.get("type"):
            continue  # series changed type: reported via new/removed below
        if kind in ("counter", "gauge"):
            delta = float(mb.get("value", 0.0)) - float(ma.get("value", 0.0))
            if delta == 0.0:
                continue
            row = {
                "name": name,
                "a": _round(float(ma.get("value", 0.0))),
                "b": _round(float(mb.get("value", 0.0))),
                "delta": _round(delta),
            }
            (counters if kind == "counter" else gauges).append(row)
        elif kind == "histogram":
            count_delta = int(mb.get("count", 0)) - int(ma.get("count", 0))
            sum_delta = float(mb.get("sum", 0.0)) - float(ma.get("sum", 0.0))
            shifts: Dict[str, Any] = {}
            for q in _QUANTILES:
                qa = _histogram_quantile(ma, q)
                qb = _histogram_quantile(mb, q)
                if qa != qb:
                    shifts[f"p{int(q * 100)}"] = {
                        "a": qa,
                        "b": qb,
                    }
            if count_delta == 0 and sum_delta == 0.0 and not shifts:
                continue
            histograms.append(
                {
                    "name": name,
                    "count_delta": count_delta,
                    "sum_delta": _round(sum_delta),
                    "quantile_shifts": shifts,
                }
            )
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "new_metrics": sorted(set(table_b) - set(table_a)),
        "removed_metrics": sorted(set(table_a) - set(table_b)),
    }


# -- record / span tables --------------------------------------------------


def _span_table(snapshot: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """span kind -> {count, total_dur_s, max_dur_s}."""
    table: Dict[str, Dict[str, float]] = {}
    for record in snapshot.get("records", []):
        if record.get("component") != SPAN_COMPONENT:
            continue
        kind = str(record.get("kind"))
        data = record.get("data", {})
        dur = float(data.get("dur", 0.0))
        row = table.setdefault(
            kind, {"count": 0.0, "total_dur_s": 0.0, "max_dur_s": 0.0}
        )
        row["count"] += 1
        row["total_dur_s"] += dur
        if dur > row["max_dur_s"]:
            row["max_dur_s"] = dur
    return table


def _record_table(snapshot: Dict[str, Any]) -> Dict[str, int]:
    """"component/kind" -> record count (spans excluded; counted above)."""
    table: Dict[str, int] = {}
    for record in snapshot.get("records", []):
        if record.get("component") == SPAN_COMPONENT:
            continue
        key = f"{record.get('component')}/{record.get('kind')}"
        table[key] = table.get(key, 0) + 1
    return table


def _diff_spans(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    table_a, table_b = _span_table(a), _span_table(b)
    rows: List[Dict[str, Any]] = []
    for kind in sorted(set(table_a) & set(table_b)):
        ra, rb = table_a[kind], table_b[kind]
        count_delta = int(rb["count"] - ra["count"])
        total_delta = rb["total_dur_s"] - ra["total_dur_s"]
        max_delta = rb["max_dur_s"] - ra["max_dur_s"]
        if count_delta == 0 and total_delta == 0.0 and max_delta == 0.0:
            continue
        rows.append(
            {
                "kind": kind,
                "count_delta": count_delta,
                "total_dur_delta_s": _round(total_delta),
                "max_dur_delta_s": _round(max_delta),
            }
        )
    return {
        "spans": rows,
        "new_span_kinds": sorted(set(table_b) - set(table_a)),
        "removed_span_kinds": sorted(set(table_a) - set(table_b)),
    }


def _diff_records(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    table_a, table_b = _record_table(a), _record_table(b)
    rows: List[Dict[str, Any]] = []
    for key in sorted(set(table_a) & set(table_b)):
        delta = table_b[key] - table_a[key]
        if delta == 0:
            continue
        rows.append(
            {"series": key, "a": table_a[key], "b": table_b[key], "delta": delta}
        )
    return {
        "records": rows,
        "new_record_kinds": sorted(set(table_b) - set(table_a)),
        "removed_record_kinds": sorted(set(table_a) - set(table_b)),
    }


# -- suspect ranking -------------------------------------------------------


def _cause_profile(
    snapshot: Dict[str, Any],
    samples: Optional[Iterable[Any]],
) -> Tuple[Dict[str, float], Dict[str, int]]:
    """(mean |cause| in ms per named cause, outcome counts) for one run."""
    report = explain_run(snapshot, samples=samples)
    sums: Dict[str, float] = {cause: 0.0 for cause in CAUSES}
    counts: Dict[str, int] = {cause: 0 for cause in CAUSES}
    for d in report.decompositions:
        for cause, value in d.components().items():
            sums[cause] += abs(value)
            counts[cause] += 1
    means = {
        cause: (sums[cause] / counts[cause] * 1e3 if counts[cause] else 0.0)
        for cause in CAUSES
    }
    return means, dict(report.outcomes)


def _relative(delta: float, baseline: float) -> float:
    return abs(delta) / max(abs(baseline), _EPSILON)


def rank_suspects(
    a: Dict[str, Any],
    b: Dict[str, Any],
    samples_a: Optional[Iterable[Any]] = None,
    samples_b: Optional[Iterable[Any]] = None,
) -> List[Dict[str, Any]]:
    """Rank what most plausibly drove the movement from ``a`` to ``b``.

    Four deterministic evidence channels, scored by *relative* change
    against the baseline so a 2× queueing jump outranks a 0.1% counter
    drift regardless of absolute units:

    * ``cause`` — mean |component| shift per named error cause (the
      causal decomposition of :mod:`repro.obs.explain`);
    * ``outcome`` — exchange outcome mix shifts (ok / timeout / kod...);
    * ``span`` — per-span-kind total-duration shifts;
    * ``counter`` — raw counter shifts.

    Ties break by (kind, component) so the ranking is reproducible.
    """
    suspects: List[Dict[str, Any]] = []

    causes_a, outcomes_a = _cause_profile(a, samples_a)
    causes_b, outcomes_b = _cause_profile(b, samples_b)
    for cause in CAUSES:
        va, vb = causes_a.get(cause, 0.0), causes_b.get(cause, 0.0)
        delta = vb - va
        if delta == 0.0:
            continue
        suspects.append(
            {
                "kind": "cause",
                "component": cause,
                "a": _round(va),
                "b": _round(vb),
                "delta": _round(delta),
                "unit": "ms",
                "score": _round(_relative(delta, va)),
            }
        )
    for outcome in sorted(set(outcomes_a) | set(outcomes_b)):
        va, vb = outcomes_a.get(outcome, 0), outcomes_b.get(outcome, 0)
        delta = vb - va
        if delta == 0:
            continue
        suspects.append(
            {
                "kind": "outcome",
                "component": outcome,
                "a": va,
                "b": vb,
                "delta": delta,
                "unit": "exchanges",
                "score": _round(_relative(delta, va)),
            }
        )
    spans_a, spans_b = _span_table(a), _span_table(b)
    for kind in sorted(set(spans_a) | set(spans_b)):
        va = spans_a.get(kind, {}).get("total_dur_s", 0.0)
        vb = spans_b.get(kind, {}).get("total_dur_s", 0.0)
        delta = vb - va
        if delta == 0.0:
            continue
        suspects.append(
            {
                "kind": "span",
                "component": kind,
                "a": _round(va),
                "b": _round(vb),
                "delta": _round(delta),
                "unit": "s",
                "score": _round(_relative(delta, va)),
            }
        )
    table_a, table_b = _metric_table(a), _metric_table(b)
    for name in sorted(set(table_a) | set(table_b)):
        ma = table_a.get(name, {})
        mb = table_b.get(name, {})
        if (ma.get("type") or mb.get("type")) != "counter":
            continue
        va = float(ma.get("value", 0.0))
        vb = float(mb.get("value", 0.0))
        delta = vb - va
        if delta == 0.0:
            continue
        suspects.append(
            {
                "kind": "counter",
                "component": name,
                "a": _round(va),
                "b": _round(vb),
                "delta": _round(delta),
                "unit": "count",
                "score": _round(_relative(delta, va)),
            }
        )
    suspects.sort(key=lambda s: (-s["score"], s["kind"], s["component"]))
    return suspects


# -- whole diff ------------------------------------------------------------


def diff_snapshots(
    a: Dict[str, Any],
    b: Dict[str, Any],
    samples_a: Optional[Iterable[Any]] = None,
    samples_b: Optional[Iterable[Any]] = None,
) -> Dict[str, Any]:
    """Full canonical diff document (``mntp-telemetry-diff-v1``).

    ``identical`` is True exactly when every section is empty — two
    same-seed runs of the same code diff to nothing.
    """
    out: Dict[str, Any] = {"format": DIFF_FORMAT}
    out.update(_diff_metrics(a, b))
    out.update(_diff_spans(a, b))
    out.update(_diff_records(a, b))
    out["suspects"] = rank_suspects(
        a, b, samples_a=samples_a, samples_b=samples_b
    )
    out["identical"] = not any(
        out[key]
        for key in (
            "counters", "gauges", "histograms",
            "new_metrics", "removed_metrics",
            "spans", "new_span_kinds", "removed_span_kinds",
            "records", "new_record_kinds", "removed_record_kinds",
            "suspects",
        )
    )
    return out


def render_diff_text(diff: Dict[str, Any], top: int = 5) -> str:
    """Human-readable diff (the CLI prints this verbatim)."""
    if diff.get("identical"):
        return "snapshots are identical (no telemetry differences)"
    lines: List[str] = []
    suspects = diff.get("suspects", [])
    if suspects:
        shown = suspects[: max(0, top)]
        lines.append(f"top {len(shown)} suspects (of {len(suspects)}):")
        for rank, s in enumerate(shown, 1):
            lines.append(
                f"  {rank}. [{s['kind']}] {s['component']}: "
                f"{s['a']} -> {s['b']} {s['unit']} "
                f"(delta {s['delta']:+}, score {s['score']})"
            )
    for key, label in (
        ("counters", "counter deltas"),
        ("gauges", "gauge deltas"),
    ):
        rows = diff.get(key, [])
        if rows:
            lines.append(f"{label}: " + " ".join(
                f"{r['name']}{r['delta']:+g}" for r in rows
            ))
    for row in diff.get("histograms", []):
        shifts = " ".join(
            f"{q}:{v['a']}->{v['b']}"
            for q, v in sorted(row["quantile_shifts"].items())
        )
        lines.append(
            f"histogram {row['name']}: count{row['count_delta']:+d} "
            f"sum{row['sum_delta']:+g}" + (f" [{shifts}]" if shifts else "")
        )
    for row in diff.get("spans", []):
        lines.append(
            f"span {row['kind']}: count{row['count_delta']:+d} "
            f"total_dur{row['total_dur_delta_s']:+g}s "
            f"max_dur{row['max_dur_delta_s']:+g}s"
        )
    for row in diff.get("records", []):
        lines.append(
            f"records {row['series']}: {row['a']} -> {row['b']} "
            f"({row['delta']:+d})"
        )
    for key, label in (
        ("new_metrics", "new metrics"),
        ("removed_metrics", "removed metrics"),
        ("new_span_kinds", "new span kinds"),
        ("removed_span_kinds", "removed span kinds"),
        ("new_record_kinds", "new record series"),
        ("removed_record_kinds", "removed record series"),
    ):
        names = diff.get(key, [])
        if names:
            lines.append(f"{label}: " + " ".join(names))
    return "\n".join(lines)

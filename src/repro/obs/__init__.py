"""Deterministic-safe observability: metrics, spans, exporters.

The simulation side (metrics registry, span tracer) runs entirely on
virtual time, so telemetry is a pure function of the run's seed —
two runs with the same seed export byte-identical JSONL.  Wall-clock
measurement is quarantined in :class:`~repro.obs.runtimer.RunTimer`
for CLI/bench layers.  See ``docs/OBSERVABILITY.md`` for the metric
naming scheme, the span taxonomy, and the exporter formats.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import SPAN_COMPONENT, Span, SpanTracer
from repro.obs.telemetry import (
    TELEMETRY_FORMAT,
    ManualClock,
    Telemetry,
    record_from_dict,
    record_to_dict,
    snapshot_metric_names,
    snapshot_span_kinds,
)
from repro.obs.runtimer import RunTimer
from repro.obs.exporters import (
    chrome_trace_events,
    jsonl_lines,
    load_jsonl,
    render_prometheus,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.taxonomy import (
    METRIC_UNIT_SUFFIXES,
    SPAN_KINDS,
    SPAN_SUBSYSTEMS,
    metric_name_conforms,
    span_kind_registered,
    span_subsystem,
)
from repro.obs.causal import (
    Exchange,
    Hop,
    InterferenceEpisode,
    Turnaround,
    assemble_exchanges,
    completeness,
)
from repro.obs.explain import (
    CAUSES,
    EXPLAIN_FORMAT,
    Decomposition,
    ExplainReport,
    WindowAgg,
    decompose,
    explain_run,
    render_tree,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SPAN_COMPONENT",
    "Span",
    "SpanTracer",
    "TELEMETRY_FORMAT",
    "ManualClock",
    "Telemetry",
    "record_from_dict",
    "record_to_dict",
    "snapshot_metric_names",
    "snapshot_span_kinds",
    "RunTimer",
    "chrome_trace_events",
    "jsonl_lines",
    "load_jsonl",
    "render_prometheus",
    "write_chrome_trace",
    "write_jsonl",
    "METRIC_UNIT_SUFFIXES",
    "SPAN_KINDS",
    "SPAN_SUBSYSTEMS",
    "metric_name_conforms",
    "span_kind_registered",
    "span_subsystem",
    "Exchange",
    "Hop",
    "InterferenceEpisode",
    "Turnaround",
    "assemble_exchanges",
    "completeness",
    "CAUSES",
    "EXPLAIN_FORMAT",
    "Decomposition",
    "ExplainReport",
    "WindowAgg",
    "decompose",
    "explain_run",
    "render_tree",
]

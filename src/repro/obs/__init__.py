"""Deterministic-safe observability: metrics, spans, exporters.

The simulation side (metrics registry, span tracer) runs entirely on
virtual time, so telemetry is a pure function of the run's seed —
two runs with the same seed export byte-identical JSONL.  Wall-clock
measurement is quarantined in :class:`~repro.obs.runtimer.RunTimer`
for CLI/bench layers.  See ``docs/OBSERVABILITY.md`` for the metric
naming scheme, the span taxonomy, and the exporter formats.
"""

from repro.obs.merge import (
    SHARD_FORMAT,
    content_id,
    iter_merged_records,
    make_shard,
    merge_documents,
    run_demo_shards,
    write_merged_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.ringbuf import DEFAULT_RING_CAPACITY, RingBufferSink
from repro.obs.sampling import (
    DEFAULT_EXEMPLARS,
    ERROR_KINDS,
    Reservoir,
    TraceSampler,
    stable_hash,
)
from repro.obs.spans import SPAN_COMPONENT, Span, SpanTracer
from repro.obs.telemetry import (
    TELEMETRY_FORMAT,
    ManualClock,
    Telemetry,
    record_from_dict,
    record_to_dict,
    snapshot_metric_names,
    snapshot_span_kinds,
)
from repro.obs.runtimer import RunTimer
from repro.obs.exporters import (
    chrome_trace_events,
    jsonl_lines,
    load_jsonl,
    render_prometheus,
    stream_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.taxonomy import (
    METRIC_UNIT_SUFFIXES,
    SPAN_KINDS,
    SPAN_SUBSYSTEMS,
    metric_name_conforms,
    span_kind_registered,
    span_subsystem,
)
from repro.obs.causal import (
    Exchange,
    Hop,
    InterferenceEpisode,
    Turnaround,
    assemble_exchanges,
    completeness,
)
from repro.obs.explain import (
    CAUSES,
    EXPLAIN_FORMAT,
    Decomposition,
    ExplainReport,
    WindowAgg,
    decompose,
    explain_run,
    render_tree,
)
from repro.obs.health import (
    HEALTH_FORMAT,
    HEALTH_STATES,
    HealthMonitor,
    SloSpec,
    recovered_transitions,
    render_health_text,
    replay_health,
    smoke_spec,
)
from repro.obs.diff import (
    DIFF_FORMAT,
    coerce_snapshot,
    diff_snapshots,
    rank_suspects,
    render_diff_text,
)

__all__ = [
    "Counter",
    "DEFAULT_EXEMPLARS",
    "DEFAULT_RING_CAPACITY",
    "ERROR_KINDS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Reservoir",
    "RingBufferSink",
    "SHARD_FORMAT",
    "SPAN_COMPONENT",
    "Span",
    "SpanTracer",
    "TraceSampler",
    "content_id",
    "iter_merged_records",
    "make_shard",
    "merge_documents",
    "run_demo_shards",
    "stable_hash",
    "stream_jsonl",
    "write_merged_jsonl",
    "TELEMETRY_FORMAT",
    "ManualClock",
    "Telemetry",
    "record_from_dict",
    "record_to_dict",
    "snapshot_metric_names",
    "snapshot_span_kinds",
    "RunTimer",
    "chrome_trace_events",
    "jsonl_lines",
    "load_jsonl",
    "render_prometheus",
    "write_chrome_trace",
    "write_jsonl",
    "METRIC_UNIT_SUFFIXES",
    "SPAN_KINDS",
    "SPAN_SUBSYSTEMS",
    "metric_name_conforms",
    "span_kind_registered",
    "span_subsystem",
    "Exchange",
    "Hop",
    "InterferenceEpisode",
    "Turnaround",
    "assemble_exchanges",
    "completeness",
    "CAUSES",
    "EXPLAIN_FORMAT",
    "Decomposition",
    "ExplainReport",
    "WindowAgg",
    "decompose",
    "explain_run",
    "render_tree",
    "HEALTH_FORMAT",
    "HEALTH_STATES",
    "HealthMonitor",
    "SloSpec",
    "recovered_transitions",
    "render_health_text",
    "replay_health",
    "smoke_spec",
    "DIFF_FORMAT",
    "coerce_snapshot",
    "diff_snapshots",
    "rank_suspects",
    "render_diff_text",
]

"""Root-cause attribution for offset errors ("why did this sample spike?").

Built on :mod:`repro.obs.causal`: for every completed ``ok`` exchange
the four-timestamp algebra says the measurement error decomposes as ::

    error  =  offset + truth
           =  server_term + (owd_fwd - owd_rev) / 2

where the one-way-delay difference splits, hop component by hop
component, into

* **asymmetry** — the propagation-floor difference of the two paths,
* **queueing** — queueing/contention/bufferbloat delay difference,
* **interference** — 802.11 retry backoff difference (the channel), and
* **server_turnaround** — the residual once the three wire terms are
  subtracted: the server-side contribution (its own clock error plus
  timestamping effects around the turnaround).  Computable only when
  ground truth for the sample is known.

The per-exchange decompositions aggregate into fixed windows for a
time-series view, and the report renders as text or canonical JSON —
both byte-identical for same-seed runs, like everything in
:mod:`repro.obs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.causal import Exchange, assemble_exchanges, completeness

#: Report format tag (embedded in archived runs).
EXPLAIN_FORMAT = "mntp-explain-v1"

#: The named causes, in deterministic tie-break order.
CAUSES = ("interference", "queueing", "asymmetry", "server_turnaround")


@dataclass
class Decomposition:
    """One ``ok`` exchange's offset error split into named causes.

    All components are signed seconds; a positive component pushed the
    reported offset upward.  ``server_turnaround`` (the residual) and
    ``error`` require ground truth and are None without it.
    """

    trace_id: str
    time: float
    client: str
    server: Optional[str]
    offset: float
    error: Optional[float]
    asymmetry: float
    queueing: float
    interference: float
    server_turnaround: Optional[float]
    turnaround_s: Optional[float]
    episodes: int

    def components(self) -> Dict[str, float]:
        """The named, signed components (seconds)."""
        out = {
            "interference": self.interference,
            "queueing": self.queueing,
            "asymmetry": self.asymmetry,
        }
        if self.server_turnaround is not None:
            out["server_turnaround"] = self.server_turnaround
        return out

    @property
    def dominant_cause(self) -> str:
        """The component with the largest magnitude (ties: CAUSES order)."""
        comps = self.components()
        best = "interference"
        best_mag = -1.0
        for cause in CAUSES:
            if cause not in comps:
                continue
            mag = abs(comps[cause])
            if mag > best_mag:
                best, best_mag = cause, mag
        return best

    @property
    def magnitude(self) -> float:
        """|error| when truth was available, else |offset|."""
        return abs(self.error) if self.error is not None else abs(self.offset)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (values in milliseconds)."""
        out: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "time": self.time,
            "client": self.client,
            "server": self.server,
            "offset_ms": self.offset * 1e3,
            "error_ms": None if self.error is None else self.error * 1e3,
            "asymmetry_ms": self.asymmetry * 1e3,
            "queueing_ms": self.queueing * 1e3,
            "interference_ms": self.interference * 1e3,
            "server_turnaround_ms": (
                None if self.server_turnaround is None
                else self.server_turnaround * 1e3
            ),
            "episodes": self.episodes,
            "dominant_cause": self.dominant_cause,
        }
        return out


@dataclass
class WindowAgg:
    """Fixed-window aggregation of the decomposition time series."""

    index: int
    t0: float
    t1: float
    count: int
    mean_abs_error_ms: Optional[float]
    mean_asymmetry_ms: float
    mean_queueing_ms: float
    mean_interference_ms: float
    mean_server_ms: Optional[float]
    episodes: int

    @property
    def dominant_cause(self) -> str:
        """Largest mean-magnitude component over the window."""
        comps = {
            "interference": self.mean_interference_ms,
            "queueing": self.mean_queueing_ms,
            "asymmetry": self.mean_asymmetry_ms,
        }
        if self.mean_server_ms is not None:
            comps["server_turnaround"] = self.mean_server_ms
        best = "interference"
        best_mag = -1.0
        for cause in CAUSES:
            if cause not in comps:
                continue
            mag = abs(comps[cause])
            if mag > best_mag:
                best, best_mag = cause, mag
        return best

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "t0": self.t0,
            "t1": self.t1,
            "count": self.count,
            "mean_abs_error_ms": self.mean_abs_error_ms,
            "mean_asymmetry_ms": self.mean_asymmetry_ms,
            "mean_queueing_ms": self.mean_queueing_ms,
            "mean_interference_ms": self.mean_interference_ms,
            "mean_server_turnaround_ms": self.mean_server_ms,
            "episodes": self.episodes,
            "dominant_cause": self.dominant_cause,
        }


@dataclass
class ExplainReport:
    """Full root-cause report for one run."""

    exchanges_total: int
    exchanges_complete: int
    coverage: float
    outcomes: Dict[str, int]
    decompositions: List[Decomposition]
    p90_abs_error: Optional[float]
    window_s: float
    windows: List[WindowAgg] = field(default_factory=list)

    def worst(self, n: int) -> List[Decomposition]:
        """The ``n`` largest-magnitude decompositions."""
        ranked = sorted(
            self.decompositions, key=lambda d: (-d.magnitude, d.trace_id)
        )
        return ranked[: max(0, n)]

    def above_p90(self) -> List[Decomposition]:
        """Decompositions whose |error| exceeds the run's p90."""
        if self.p90_abs_error is None:
            return []
        return [
            d for d in self.decompositions
            if d.error is not None and abs(d.error) > self.p90_abs_error
        ]

    def to_dict(self, worst_n: int = 10) -> Dict[str, Any]:
        """Canonical JSON-ready report (deterministic per snapshot)."""
        return {
            "format": EXPLAIN_FORMAT,
            "exchanges_total": self.exchanges_total,
            "exchanges_complete": self.exchanges_complete,
            "coverage": self.coverage,
            "outcomes": dict(sorted(self.outcomes.items())),
            "decomposed": len(self.decompositions),
            "p90_abs_error_ms": (
                None if self.p90_abs_error is None else self.p90_abs_error * 1e3
            ),
            "window_s": self.window_s,
            "worst": [d.to_dict() for d in self.worst(worst_n)],
            "windows": [w.to_dict() for w in self.windows],
        }

    def render_text(self, worst_n: int = 5) -> str:
        """Human-readable report (the CLI prints this verbatim)."""
        lines = [
            f"exchanges: {self.exchanges_total} total, "
            f"{self.exchanges_complete} complete causal trees "
            f"({self.coverage * 100:.1f}% coverage)",
            "outcomes: " + " ".join(
                f"{k}={v}" for k, v in sorted(self.outcomes.items())
            ),
        ]
        if self.p90_abs_error is not None:
            with_truth = sum(
                1 for d in self.decompositions if d.error is not None
            )
            lines.append(
                f"p90 |error|: {self.p90_abs_error * 1e3:.2f} ms over "
                f"{with_truth} truth-joined samples "
                f"({len(self.decompositions)} decomposed)"
            )
        lines.append("")
        lines.append(f"worst {min(worst_n, len(self.decompositions))} samples:")
        for d in self.worst(worst_n):
            err = "n/a" if d.error is None else f"{d.error * 1e3:+8.2f}"
            lines.append(
                f"  t={d.time:9.2f}  {d.trace_id:<14} err(ms)={err:>8}  "
                f"intf={d.interference * 1e3:+7.2f} "
                f"queue={d.queueing * 1e3:+7.2f} "
                f"asym={d.asymmetry * 1e3:+7.2f}  "
                f"cause={d.dominant_cause}"
            )
        if self.windows:
            lines.append("")
            lines.append(
                f"windows ({self.window_s:.0f} s): "
                "t0, n, mean|err|, intf, queue, asym, cause"
            )
            for w in self.windows:
                err = (
                    "    n/a" if w.mean_abs_error_ms is None
                    else f"{w.mean_abs_error_ms:7.2f}"
                )
                lines.append(
                    f"  {w.t0:9.0f}  {w.count:4d}  {err}  "
                    f"{w.mean_interference_ms:+7.2f} "
                    f"{w.mean_queueing_ms:+7.2f} "
                    f"{w.mean_asymmetry_ms:+7.2f}  {w.dominant_cause}"
                )
        return "\n".join(lines)


def _truth_map(
    samples: Optional[Iterable[Any]],
) -> Dict[Tuple[float, float], float]:
    """(time, offset) -> truth for samples carrying ground truth.

    ``samples`` may hold ``OffsetPoint``-like objects (``.time``,
    ``.offset``, ``.truth``) or ``(time, offset, truth)`` tuples.  The
    join key is exact: the client records the sample in the same event
    (same virtual instant, same float) that ends the exchange span.
    """
    table: Dict[Tuple[float, float], float] = {}
    if samples is None:
        return table
    for sample in samples:
        if hasattr(sample, "time"):
            time, offset, truth = sample.time, sample.offset, sample.truth
        else:
            time, offset, truth = sample
        if truth == truth:  # skip NaN
            table[(float(time), float(offset))] = float(truth)
    return table


def decompose(
    exchange: Exchange,
    truth: Optional[float] = None,
) -> Optional[Decomposition]:
    """Split one ``ok`` exchange's error into causes; None if impossible."""
    if exchange.outcome != "ok" or exchange.offset is None:
        return None
    req, rsp = exchange.request_hop, exchange.response_hop
    if req is None or rsp is None:
        return None
    asymmetry = (req.prop_s - rsp.prop_s) / 2.0
    queueing = (req.queue_s - rsp.queue_s) / 2.0
    interference = (req.intf_s - rsp.intf_s) / 2.0
    error: Optional[float] = None
    server_term: Optional[float] = None
    if truth is not None:
        error = exchange.offset + truth
        server_term = error - (asymmetry + queueing + interference)
    return Decomposition(
        trace_id=exchange.trace_id,
        time=exchange.t1,
        client=exchange.client,
        server=exchange.server,
        offset=float(exchange.offset),
        error=error,
        asymmetry=asymmetry,
        queueing=queueing,
        interference=interference,
        server_turnaround=server_term,
        turnaround_s=(
            exchange.turnaround.dur if exchange.turnaround is not None else None
        ),
        episodes=len(exchange.interference),
    )


def _p90(values: List[float]) -> Optional[float]:
    """The empirical 90th percentile (nearest-rank), None if empty."""
    if not values:
        return None
    ranked = sorted(values)
    index = min(len(ranked) - 1, max(0, int(0.9 * len(ranked) + 0.5) - 1))
    return ranked[index]


def _windows(
    decompositions: List[Decomposition], window_s: float
) -> List[WindowAgg]:
    buckets: Dict[int, List[Decomposition]] = {}
    for d in decompositions:
        buckets.setdefault(int(d.time // window_s), []).append(d)
    out: List[WindowAgg] = []
    for index in sorted(buckets):
        group = buckets[index]
        errors = [abs(d.error) for d in group if d.error is not None]
        servers = [
            d.server_turnaround for d in group if d.server_turnaround is not None
        ]
        out.append(
            WindowAgg(
                index=index,
                t0=index * window_s,
                t1=(index + 1) * window_s,
                count=len(group),
                mean_abs_error_ms=(
                    sum(errors) / len(errors) * 1e3 if errors else None
                ),
                mean_asymmetry_ms=(
                    sum(d.asymmetry for d in group) / len(group) * 1e3
                ),
                mean_queueing_ms=(
                    sum(d.queueing for d in group) / len(group) * 1e3
                ),
                mean_interference_ms=(
                    sum(d.interference for d in group) / len(group) * 1e3
                ),
                mean_server_ms=(
                    sum(servers) / len(servers) * 1e3 if servers else None
                ),
                episodes=sum(d.episodes for d in group),
            )
        )
    return out


def explain_run(
    snapshot: Dict[str, Any],
    samples: Optional[Iterable[Any]] = None,
    window_s: float = 300.0,
) -> ExplainReport:
    """Assemble, decompose and aggregate one run's telemetry snapshot.

    Args:
        snapshot: A :meth:`repro.obs.Telemetry.snapshot` dict (live or
            loaded from an archive).
        samples: Optional offset observations with ground truth —
            ``OffsetPoint``-like objects or ``(time, offset, truth)``
            tuples — joined to exchanges by exact (time, offset).
        window_s: Aggregation window for the time-series view.
    """
    if window_s <= 0:
        raise ValueError("window must be positive")
    exchanges = assemble_exchanges(snapshot)
    truths = _truth_map(samples)
    outcomes: Dict[str, int] = {}
    decompositions: List[Decomposition] = []
    for exchange in exchanges:
        outcomes[exchange.outcome] = outcomes.get(exchange.outcome, 0) + 1
        truth = (
            truths.get((exchange.t1, exchange.offset))
            if exchange.offset is not None
            else None
        )
        d = decompose(exchange, truth)
        if d is not None:
            decompositions.append(d)
    return ExplainReport(
        exchanges_total=len(exchanges),
        exchanges_complete=sum(1 for e in exchanges if e.complete),
        coverage=completeness(exchanges),
        outcomes=outcomes,
        decompositions=decompositions,
        p90_abs_error=_p90(
            [abs(d.error) for d in decompositions if d.error is not None]
        ),
        window_s=window_s,
        windows=_windows(decompositions, window_s),
    )


def render_tree(exchange: Exchange, decomposition: Optional[Decomposition] = None) -> str:
    """One exchange's causal tree as indented text (for ``--trace-id``)."""
    offset = (
        "" if exchange.offset is None
        else f" offset={exchange.offset * 1e3:+.2f}ms"
    )
    lines = [
        f"sntp.exchange {exchange.trace_id} client={exchange.client} "
        f"server={exchange.server or '?'} outcome={exchange.outcome}{offset} "
        f"t=[{exchange.t0:.3f}, {exchange.t1:.3f}] dur={exchange.dur * 1e3:.2f}ms"
    ]

    def hop_line(label: str, hop) -> str:
        return (
            f"|- link.transit {label} {hop.link} dur={hop.dur * 1e3:.2f}ms "
            f"(prop={hop.prop_s * 1e3:.2f} queue={hop.queue_s * 1e3:.2f} "
            f"intf={hop.intf_s * 1e3:.2f})"
        )

    if exchange.request_hop is not None:
        lines.append(hop_line("request", exchange.request_hop))
    if exchange.turnaround is not None:
        t = exchange.turnaround
        lines.append(
            f"|- server.turnaround {t.server} dur={t.dur * 1e3:.2f}ms "
            f"outcome={t.outcome or '?'}"
        )
    if exchange.response_hop is not None:
        lines.append(hop_line("response", exchange.response_hop))
    for drop in exchange.drops:
        lines.append(
            f"|- {drop['kind']} on {drop['component']} t={drop['t']:.3f} "
            f"ident={drop['ident']}"
        )
    for ep in exchange.interference:
        lines.append(
            f"|- channel.interference [{ep.t0:.3f}, {ep.t1:.3f}] "
            f"rssi_dip={ep.rssi_dip_db:.1f}dB noise_lift={ep.noise_lift_db:.1f}dB"
        )
    for fault in exchange.faults:
        lines.append(
            f"|- fault.episode {fault.fault} target={fault.target} "
            f"direction={fault.direction} [{fault.t0:.3f}, {fault.t1:.3f}]"
        )
    if decomposition is not None:
        lines.append(
            f"`- decomposition: err="
            + (
                "n/a" if decomposition.error is None
                else f"{decomposition.error * 1e3:+.2f}ms"
            )
            + f" intf={decomposition.interference * 1e3:+.2f}ms"
            f" queue={decomposition.queueing * 1e3:+.2f}ms"
            f" asym={decomposition.asymmetry * 1e3:+.2f}ms"
            + (
                ""
                if decomposition.server_turnaround is None
                else f" server={decomposition.server_turnaround * 1e3:+.2f}ms"
            )
            + f" -> {decomposition.dominant_cause}"
        )
    return "\n".join(lines)

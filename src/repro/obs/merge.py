"""Canonical, order-independent merge of telemetry shard snapshots.

The ROADMAP #1 shard split fans simulation work across processes; each
worker produces one telemetry snapshot and this module defines the
contract for combining them:

* **Envelope** — :data:`SHARD_FORMAT` (``mntp-telemetry-shard-v1``)
  wraps a plain ``mntp-telemetry-v1`` snapshot with a shard id and
  free-form metadata.  Bare snapshots are also accepted; they get a
  content-derived id so the merge stays order-independent.
* **Metrics** — counters sum; histograms bucket-merge (bounds must
  agree); a gauge takes the value of the shard that wrote it most
  (ties broken by the larger value) with update counts summed.
* **Records** — interleaved by *monotonised* time: within one shard
  the original order is preserved exactly (span records are stamped at
  their begin time but appended at end time, so a plain time sort
  would reorder a single shard and break the identity property).
  Across shards, records interleave by the running-maximum timestamp,
  then by shard id, then by within-shard position.

The merge is **canonical**: any permutation of the same shards yields
a byte-identical JSONL export, and merging a single shard is the
identity.  :func:`run_demo_shards` exercises the contract end-to-end
with a process pool (``repro-mntp sharddemo``).
"""

from __future__ import annotations

import hashlib
import heapq
import json
from typing import IO, Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs.telemetry import TELEMETRY_FORMAT

__all__ = [
    "SHARD_FORMAT",
    "content_id",
    "iter_merged_records",
    "make_shard",
    "merge_documents",
    "run_demo_shards",
    "write_merged_jsonl",
]

#: Format tag of the shard envelope.
SHARD_FORMAT = "mntp-telemetry-shard-v1"

Snapshot = Dict[str, Any]


def content_id(snapshot: Snapshot) -> str:
    """Deterministic id for a bare snapshot (sha256 of canonical JSON)."""
    blob = json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def make_shard(
    snapshot: Snapshot, shard_id: str, meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Wrap one telemetry snapshot in the shard envelope."""
    if snapshot.get("format") != TELEMETRY_FORMAT:
        raise ValueError(f"not a {TELEMETRY_FORMAT} snapshot")
    return {
        "format": SHARD_FORMAT,
        "shard": str(shard_id),
        "snapshot": snapshot,
        "meta": dict(meta or {}),
    }


def coerce_shard(document: Dict[str, Any]) -> Tuple[str, Snapshot]:
    """(shard id, snapshot) from an envelope or a bare snapshot.

    Raises:
        ValueError: If the document is neither format.
    """
    fmt = document.get("format")
    if fmt == SHARD_FORMAT:
        snapshot = document.get("snapshot", {})
        if snapshot.get("format") != TELEMETRY_FORMAT:
            raise ValueError("shard envelope without a telemetry snapshot")
        return str(document.get("shard", "")), snapshot
    if fmt == TELEMETRY_FORMAT:
        return content_id(document), document
    raise ValueError(
        f"expected {SHARD_FORMAT} or {TELEMETRY_FORMAT}, got {fmt!r}"
    )


def _ordered_shards(
    documents: Sequence[Dict[str, Any]],
) -> List[Tuple[str, Snapshot]]:
    """Shards sorted by id — the step that makes the merge order-free."""
    shards = [coerce_shard(doc) for doc in documents]
    by_id: Dict[str, Snapshot] = {}
    for shard_id, snapshot in shards:
        seen = by_id.get(shard_id)
        if seen is not None and seen is not snapshot and seen != snapshot:
            raise ValueError(f"conflicting shards share id {shard_id!r}")
        by_id[shard_id] = snapshot
    return [(shard_id, by_id[shard_id]) for shard_id in sorted(by_id)]


# -- records ---------------------------------------------------------------


def iter_merged_records(
    shards: Sequence[Tuple[str, Snapshot]],
) -> Iterator[Dict[str, Any]]:
    """Lazily interleave shard records by monotonised time.

    Each shard contributes a generator; ``heapq.merge`` holds one
    record per shard at a time, so the merge is O(shards) in memory
    regardless of record counts.
    """

    def keyed(
        rank: int, records: List[Dict[str, Any]]
    ) -> Iterator[Tuple[Tuple[float, int, int], Dict[str, Any]]]:
        ceiling = float("-inf")
        for idx, record in enumerate(records):
            t = float(record.get("t", 0.0))
            if t > ceiling:
                ceiling = t
            yield (ceiling, rank, idx), record

    streams = [
        keyed(rank, snapshot.get("records", []))
        for rank, (_shard_id, snapshot) in enumerate(shards)
    ]
    for _key, record in heapq.merge(*streams, key=lambda pair: pair[0]):
        yield record


# -- metrics ---------------------------------------------------------------


def _merge_metric_group(name: str, group: List[Dict[str, Any]]) -> Dict[str, Any]:
    kinds = {metric["type"] for metric in group}
    if len(kinds) != 1:
        raise ValueError(f"metric {name!r} has conflicting types {sorted(kinds)}")
    kind = group[0]["type"]
    help_text = max(metric.get("help", "") for metric in group)
    if kind == "counter":
        return {
            "name": name,
            "type": kind,
            "help": help_text,
            "value": sum(metric["value"] for metric in group),
        }
    if kind == "gauge":
        # The shard that updated the gauge most wins (ties: larger
        # value) — deterministic regardless of merge order.
        best = max(group, key=lambda m: (m.get("updates", 0), m["value"]))
        return {
            "name": name,
            "type": kind,
            "help": help_text,
            "value": best["value"],
            "updates": sum(metric.get("updates", 0) for metric in group),
        }
    if kind == "histogram":
        bounds = group[0]["bounds"]
        for metric in group[1:]:
            if metric["bounds"] != bounds:
                raise ValueError(f"histogram {name!r} has mismatched bounds")
        merged_counts = [0] * len(group[0]["bucket_counts"])
        for metric in group:
            for i, count in enumerate(metric["bucket_counts"]):
                merged_counts[i] += count
        return {
            "name": name,
            "type": kind,
            "help": help_text,
            "bounds": list(bounds),
            "bucket_counts": merged_counts,
            "sum": sum(metric["sum"] for metric in group),
            "count": sum(metric["count"] for metric in group),
        }
    raise ValueError(f"metric {name!r} has unknown type {kind!r}")


def _merge_metrics(
    shards: Sequence[Tuple[str, Snapshot]],
) -> List[Dict[str, Any]]:
    groups: Dict[str, List[Dict[str, Any]]] = {}
    for _shard_id, snapshot in shards:
        for metric in snapshot.get("metrics", []):
            groups.setdefault(metric["name"], []).append(metric)
    return [_merge_metric_group(name, groups[name]) for name in sorted(groups)]


# -- sampling / exemplars --------------------------------------------------


def _merge_sampling(
    shards: Sequence[Tuple[str, Snapshot]],
) -> Optional[Dict[str, Any]]:
    infos = [
        snapshot["sampling"]
        for _sid, snapshot in shards
        if "sampling" in snapshot
    ]
    if not infos:
        return None
    return {
        "rate": max(info.get("rate", 1) for info in infos),
        "kept": sum(info.get("kept", 0) for info in infos),
        "dropped": sum(info.get("dropped", 0) for info in infos),
    }


def _merge_exemplars(
    shards: Sequence[Tuple[str, Snapshot]],
) -> Dict[str, Any]:
    groups: Dict[str, List[Dict[str, Any]]] = {}
    for _sid, snapshot in shards:
        for name, reservoir in snapshot.get("exemplars", {}).items():
            groups.setdefault(name, []).append(reservoir)
    merged: Dict[str, Any] = {}
    for name in sorted(groups):
        reservoirs = groups[name]
        capacity = max(r.get("capacity", 1) for r in reservoirs)
        entries = sorted(
            (
                (e["key"], e["value"], e.get("ref", ""))
                for r in reservoirs
                for e in r.get("entries", [])
            ),
        )[:capacity]
        merged[name] = {
            "capacity": capacity,
            "seen": sum(r.get("seen", 0) for r in reservoirs),
            "entries": [
                {"key": k, "value": v, "ref": ref} for k, v, ref in entries
            ],
        }
    return merged


# -- whole-snapshot merge --------------------------------------------------


def merge_documents(documents: Sequence[Dict[str, Any]]) -> Snapshot:
    """Merge shard envelopes/snapshots into one canonical snapshot.

    The result is independent of input order (shards are re-ranked by
    id) and merging a single document returns a snapshot equal to it.
    """
    if not documents:
        raise ValueError("nothing to merge")
    shards = _ordered_shards(documents)
    if len(shards) == 1:
        # True identity transform: a lone shard's snapshot passes
        # through whole, preserving top-level sections this version
        # doesn't know about instead of rebuilding from known keys.
        return dict(shards[0][1])
    merged: Snapshot = {
        "format": TELEMETRY_FORMAT,
        "metrics": _merge_metrics(shards),
        "records": list(iter_merged_records(shards)),
    }
    sampling = _merge_sampling(shards)
    if sampling is not None:
        merged["sampling"] = sampling
    exemplars = _merge_exemplars(shards)
    if exemplars:
        merged["exemplars"] = exemplars
    return merged


def write_merged_jsonl(
    documents: Sequence[Dict[str, Any]], fileobj: IO[str]
) -> int:
    """Stream the canonical merged JSONL without materialising records.

    Metrics and exemplars merge eagerly (they are small); the record
    stream interleaves lazily, so memory stays O(shards).  Returns the
    number of lines written.
    """
    from repro.obs.exporters import write_jsonl

    if not documents:
        raise ValueError("nothing to merge")
    shards = _ordered_shards(documents)
    if len(shards) == 1:
        # Same identity guarantee as merge_documents: envelope in,
        # byte-identical envelope out.
        return write_jsonl(dict(shards[0][1]), fileobj)
    head: Snapshot = {
        "format": TELEMETRY_FORMAT,
        "metrics": _merge_metrics(shards),
    }
    sampling = _merge_sampling(shards)
    if sampling is not None:
        head["sampling"] = sampling
    exemplars = _merge_exemplars(shards)
    if exemplars:
        head["exemplars"] = exemplars
    total = sum(len(snapshot.get("records", [])) for _sid, snapshot in shards)
    return write_jsonl(
        head,
        fileobj,
        records=iter_merged_records(shards),
        record_count=total,
    )


# -- process-pool demo runner ----------------------------------------------


def _run_one_shard(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: run one shard's experiment, return its envelope.

    Module-level (not a closure) so :class:`ProcessPoolExecutor` can
    pickle it; imports are local to keep worker start cheap and avoid
    an obs -> testbed import cycle at module load.
    """
    from repro.testbed.experiment import ExperimentRunner
    from repro.testbed.nodes import TestbedOptions

    runner = ExperimentRunner(
        seed=int(spec["seed"]),
        options=TestbedOptions(
            wireless=bool(spec["wireless"]), ntp_correction=True
        ),
        duration=float(spec["duration_s"]),
        sntp_cadence=float(spec["cadence_s"]),
        sample_truth=False,
        sample_rate=spec.get("sample_rate"),
        ring_capacity=spec.get("ring_capacity"),
    )
    result = runner.run()
    exchanges = len(result.sntp) + result.sntp_failures
    return make_shard(
        result.telemetry,
        spec["shard_id"],
        meta={
            "seed": int(spec["seed"]),
            "duration_s": float(spec["duration_s"]),
            "exchanges": exchanges,
            "records": len(result.telemetry.get("records", [])),
        },
    )


def run_demo_shards(
    shards: int = 2,
    exchanges_per_shard: int = 200,
    seed: int = 0,
    sample_rate: Optional[int] = None,
    ring_capacity: Optional[int] = None,
    cadence_s: float = 1.0,
    wireless: bool = False,
    jobs: Optional[int] = None,
    serial: bool = False,
) -> List[Dict[str, Any]]:
    """Run N independent experiment shards and return their envelopes.

    Shards run across a process pool when the platform allows it
    (serial fallback otherwise, same results: each shard is an
    independent seeded simulation).  ``exchanges_per_shard`` sets the
    simulated duration via the SNTP cadence, so a 100k-exchange demo
    is just ``shards * exchanges_per_shard`` reaching that total.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    specs = [
        {
            "shard_id": f"shard-{index:04d}",
            "seed": seed + index,
            "duration_s": exchanges_per_shard * cadence_s,
            "cadence_s": cadence_s,
            "wireless": wireless,
            "sample_rate": sample_rate,
            "ring_capacity": ring_capacity,
        }
        for index in range(shards)
    ]
    if not serial and shards > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=jobs) as pool:
                return list(pool.map(_run_one_shard, specs))
        except (ImportError, NotImplementedError, OSError, PermissionError):
            pass  # fall back to in-process execution below
    return [_run_one_shard(spec) for spec in specs]

"""The per-run telemetry bundle: metrics + spans + trace.

One :class:`Telemetry` object accompanies each run.  Inside a
simulation the :class:`~repro.simcore.simulator.Simulator` constructs it
over its own virtual clock and trace log, so everything recorded is a
deterministic function of the seed.  Outside a simulation (the tuner's
grid search, which replays a recorded trace with no virtual clock) use
:meth:`Telemetry.standalone`, which runs on a :class:`ManualClock` —
a deterministic step counter standing in for a time axis.

:meth:`Telemetry.snapshot` freezes everything into plain dicts/lists
for persistence and the exporters (:mod:`repro.obs.exporters`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.simcore.trace import TraceLog, TraceRecord

#: Format tag stamped into snapshots and JSONL exports.
TELEMETRY_FORMAT = "mntp-telemetry-v1"


class ManualClock:
    """A deterministic, manually-advanced time axis.

    Used where telemetry is wanted but no simulator clock exists (the
    tuner replays traces in a plain loop); ``tick()`` advances by one
    step so spans get distinct, reproducible begin/end coordinates.
    """

    def __init__(self, start: float = 0.0, step: float = 1.0) -> None:
        if step <= 0:
            raise ValueError("step must be positive")
        self._now = float(start)
        self._step = float(step)

    def now(self) -> float:
        """Current position on the axis."""
        return self._now

    def tick(self) -> float:
        """Advance by one step and return the new position."""
        self._now += self._step
        return self._now


def record_to_dict(record: TraceRecord) -> Dict[str, Any]:
    """JSON-serialisable form of one :class:`TraceRecord`."""
    return {
        "t": record.time,
        "component": record.component,
        "kind": record.kind,
        "data": dict(record.data),
    }


def record_from_dict(data: Dict[str, Any]) -> TraceRecord:
    """Rebuild a :class:`TraceRecord` from :func:`record_to_dict` output."""
    return TraceRecord(
        time=float(data["t"]),
        component=str(data["component"]),
        kind=str(data["kind"]),
        data=dict(data.get("data", {})),
    )


class Telemetry:
    """Metrics registry + span tracer + trace log for one run.

    Args:
        now_fn: The run's time axis (virtual seconds in a simulation).
        trace: Existing log to share (the simulator passes its own so
            span records land next to component events); a fresh log is
            created when omitted.
    """

    def __init__(
        self,
        now_fn: Callable[[], float],
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.trace = trace if trace is not None else TraceLog()
        self.metrics = MetricsRegistry()
        self.spans = SpanTracer(self.trace, now_fn)
        self._now_fn = now_fn
        self._clock: Optional[ManualClock] = None

    @classmethod
    def standalone(cls, start: float = 0.0, step: float = 1.0) -> "Telemetry":
        """A telemetry bundle on a :class:`ManualClock` (non-sim layers)."""
        clock = ManualClock(start=start, step=step)
        telemetry = cls(now_fn=clock.now)
        telemetry._clock = clock
        return telemetry

    @property
    def now(self) -> float:
        """Current position on the bundle's time axis."""
        return float(self._now_fn())

    @property
    def manual(self) -> bool:
        """Whether the bundle runs on a manually-advanced clock."""
        return self._clock is not None

    def advance(self, steps: int = 1) -> float:
        """Advance a standalone bundle's manual clock by ``steps`` ticks.

        Raises:
            RuntimeError: On a simulator-backed bundle, whose time only
                moves with the event loop.
        """
        if self._clock is None:
            raise RuntimeError("telemetry clock is not manually advanceable")
        if steps < 1:
            raise ValueError("steps must be >= 1")
        now = self._clock.now()
        for _ in range(steps):
            now = self._clock.tick()
        return now

    def snapshot(self) -> Dict[str, Any]:
        """Freeze metrics and trace records into a plain dict."""
        return {
            "format": TELEMETRY_FORMAT,
            "metrics": self.metrics.snapshot(),
            "records": [record_to_dict(r) for r in self.trace],
        }


def snapshot_span_kinds(snapshot: Dict[str, Any]) -> List[str]:
    """Distinct span kinds in a snapshot, sorted."""
    from repro.obs.spans import SPAN_COMPONENT

    return sorted(
        {
            r["kind"]
            for r in snapshot.get("records", [])
            if r.get("component") == SPAN_COMPONENT
        }
    )


def snapshot_metric_names(snapshot: Dict[str, Any]) -> List[str]:
    """Distinct metric names in a snapshot, sorted."""
    return sorted({m["name"] for m in snapshot.get("metrics", [])})

"""The per-run telemetry bundle: metrics + spans + trace.

One :class:`Telemetry` object accompanies each run.  Inside a
simulation the :class:`~repro.simcore.simulator.Simulator` constructs it
over its own virtual clock and trace log, so everything recorded is a
deterministic function of the seed.  Outside a simulation (the tuner's
grid search, which replays a recorded trace with no virtual clock) use
:meth:`Telemetry.standalone`, which runs on a :class:`ManualClock` —
a deterministic step counter standing in for a time axis.

:meth:`Telemetry.snapshot` freezes everything into plain dicts/lists
for persistence and the exporters (:mod:`repro.obs.exporters`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.ringbuf import DEFAULT_RING_CAPACITY, RingBufferSink
from repro.obs.sampling import TraceSampler
from repro.obs.spans import SpanTracer
from repro.simcore.trace import TraceLog, TraceRecord

#: Format tag stamped into snapshots and JSONL exports.
TELEMETRY_FORMAT = "mntp-telemetry-v1"


class ManualClock:
    """A deterministic, manually-advanced time axis.

    Used where telemetry is wanted but no simulator clock exists (the
    tuner replays traces in a plain loop); ``tick()`` advances by one
    step so spans get distinct, reproducible begin/end coordinates.
    """

    def __init__(self, start: float = 0.0, step: float = 1.0) -> None:
        if step <= 0:
            raise ValueError("step must be positive")
        self._now = float(start)
        self._step = float(step)

    def now(self) -> float:
        """Current position on the axis."""
        return self._now

    def tick(self) -> float:
        """Advance by one step and return the new position."""
        self._now += self._step
        return self._now


def record_to_dict(record: TraceRecord) -> Dict[str, Any]:
    """JSON-serialisable form of one :class:`TraceRecord`."""
    return {
        "t": record.time,
        "component": record.component,
        "kind": record.kind,
        "data": dict(record.data),
    }


def record_from_dict(data: Dict[str, Any]) -> TraceRecord:
    """Rebuild a :class:`TraceRecord` from :func:`record_to_dict` output."""
    return TraceRecord(
        time=float(data["t"]),
        component=str(data["component"]),
        kind=str(data["kind"]),
        data=dict(data.get("data", {})),
    )


class _NullInstrument:
    """No-op stand-in for Counter/Gauge/Histogram in a disabled bundle."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        """Discard a counter increment."""

    def set(self, value: float) -> None:
        """Discard a gauge write."""

    def add(self, amount: float) -> None:
        """Discard a gauge delta."""

    def observe(self, value: float) -> None:
        """Discard a histogram observation."""


class _NullMetricsRegistry:
    """Registry facade that records nothing (``instrument=False`` runs)."""

    __slots__ = ("_null",)

    def __init__(self) -> None:
        self._null = _NullInstrument()

    def counter(self, name: str, help: str = "") -> _NullInstrument:
        """Return the shared no-op instrument."""
        return self._null

    def gauge(self, name: str, help: str = "") -> _NullInstrument:
        """Return the shared no-op instrument."""
        return self._null

    def histogram(self, name: str, help: str = "", buckets: Any = None) -> _NullInstrument:
        """Return the shared no-op instrument."""
        return self._null

    def get(self, name: str) -> None:
        """Nothing is ever registered."""
        return None

    def value(self, name: str, default: float = 0.0) -> float:
        """Every read sees the default."""
        return default

    def names(self) -> List[str]:
        """Nothing is ever registered."""
        return []

    def snapshot(self) -> List[Dict[str, Any]]:
        """Nothing to freeze."""
        return []

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False


class _NullSpan:
    """Always-closed span returned by a disabled tracer."""

    __slots__ = ()
    open = False

    def end(self, t: Optional[float] = None, **attrs: Any) -> None:
        """Nothing to close."""
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class _NullSpanTracer:
    """Span tracer facade that opens nothing (``instrument=False``)."""

    __slots__ = ("_span",)

    def __init__(self) -> None:
        self._span = _NullSpan()

    def begin(self, name: str, t: Optional[float] = None, **attrs: Any) -> _NullSpan:
        """Return the shared closed span."""
        return self._span

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        """Return the shared closed span."""
        return self._span

    @property
    def open_count(self) -> int:
        """Never any open spans."""
        return 0

    def end_all(self, t: Optional[float] = None) -> int:
        """Never any stragglers."""
        return 0


class _NullRing:
    """Sink facade staging nothing (``instrument=False`` runs)."""

    __slots__ = ()
    pending = False

    def emit(self, t: float, component: str, kind: str, data: Dict[str, Any]) -> None:
        """Discard a record."""

    def count(self, name: str, amount: float = 1.0) -> None:
        """Discard a delta."""

    def flush(self) -> int:
        """Nothing staged."""
        return 0


class Telemetry:
    """Metrics registry + span tracer + trace log for one run.

    Args:
        now_fn: The run's time axis (virtual seconds in a simulation).
        trace: Existing log to share (the simulator passes its own so
            span records land next to component events); a fresh log is
            created when omitted.
        ring_capacity: When set, a :class:`RingBufferSink` of this many
            slots becomes the bundle's emission path (the simulator
            always passes one; standalone bundles stay direct so their
            snapshots carry no self-metering counters).
        sample_rate: Keep roughly 1-in-N exchanges (needs a ring; see
            :mod:`repro.obs.sampling` for the always-keep rules).
        enabled: ``False`` swaps in no-op metrics/spans/ring so an
            uninstrumented run measures the bare simulator cost.
    """

    def __init__(
        self,
        now_fn: Callable[[], float],
        trace: Optional[TraceLog] = None,
        ring_capacity: Optional[int] = None,
        sample_rate: Optional[int] = None,
        enabled: bool = True,
    ) -> None:
        self.trace = trace if trace is not None else TraceLog()
        self._now_fn = now_fn
        self._clock: Optional[ManualClock] = None
        self.enabled = bool(enabled)
        if not self.enabled:
            self.metrics: Any = _NullMetricsRegistry()
            self.spans: Any = _NullSpanTracer()
            self.ring: Any = _NullRing()
            self.sampler: Optional[TraceSampler] = None
            return
        self.metrics = MetricsRegistry()
        if sample_rate is not None and sample_rate < 1:
            raise ValueError("sample rate must be >= 1")
        self.sampler = (
            TraceSampler(sample_rate)
            if sample_rate is not None and sample_rate > 1
            else None
        )
        if ring_capacity is not None or self.sampler is not None:
            self.ring = RingBufferSink(
                self.trace,
                self.metrics,
                capacity=ring_capacity or DEFAULT_RING_CAPACITY,
                sampler=self.sampler,
            )
        else:
            self.ring = None
        self.spans = SpanTracer(self.trace, now_fn, sink=self.ring)

    @classmethod
    def standalone(cls, start: float = 0.0, step: float = 1.0) -> "Telemetry":
        """A telemetry bundle on a :class:`ManualClock` (non-sim layers)."""
        clock = ManualClock(start=start, step=step)
        telemetry = cls(now_fn=clock.now)
        telemetry._clock = clock
        return telemetry

    @property
    def now(self) -> float:
        """Current position on the bundle's time axis."""
        return float(self._now_fn())

    @property
    def manual(self) -> bool:
        """Whether the bundle runs on a manually-advanced clock."""
        return self._clock is not None

    def advance(self, steps: int = 1) -> float:
        """Advance a standalone bundle's manual clock by ``steps`` ticks.

        Raises:
            RuntimeError: On a simulator-backed bundle, whose time only
                moves with the event loop.
        """
        if self._clock is None:
            raise RuntimeError("telemetry clock is not manually advanceable")
        if steps < 1:
            raise ValueError("steps must be >= 1")
        now = self._clock.now()
        for _ in range(steps):
            now = self._clock.tick()
        return now

    # -- hot-path emission --------------------------------------------------

    def emit(self, t: float, component: str, kind: str, **data: Any) -> None:
        """Record one trace event through the ring when one is attached.

        This is the sanctioned emission path for hot-closure call
        sites (OBS003): a sink-backed bundle stages the record (one
        tuple store, sampled at flush); a direct bundle falls through
        to the log.
        """
        ring = self.ring
        if ring is not None:
            ring.emit(t, component, kind, data)
        else:
            self.trace.emit(t, component, kind, **data)  # repro: noqa[OBS003]

    def count(self, name: str, amount: float = 1.0) -> None:
        """Batch a counter delta through the ring when one is attached."""
        ring = self.ring
        if ring is not None:
            ring.count(name, amount)
        else:
            self.metrics.counter(name).inc(amount)  # repro: noqa[OBS003]

    def observe_exemplar(self, name: str, value: float, ref: str = "") -> None:
        """Offer a histogram observation to the sampler's reservoirs."""
        sampler = self.sampler
        if sampler is not None:
            sampler.observe_exemplar(name, value, ref)

    def flush(self) -> None:
        """Drain any staged records/deltas into the log and registry."""
        ring = self.ring
        if ring is not None and ring.pending:
            ring.flush()

    def iter_record_dicts(self) -> Iterator[Dict[str, Any]]:
        """Lazily yield JSON-ready records (the streaming export path)."""
        self.flush()
        for record in self.trace:
            yield record_to_dict(record)

    def snapshot(self) -> Dict[str, Any]:
        """Freeze metrics and trace records into a plain dict."""
        self.flush()
        snap: Dict[str, Any] = {
            "format": TELEMETRY_FORMAT,
            "metrics": self.metrics.snapshot(),
            # record_to_dict inlined and the payload dict aliased, not
            # copied: thousands of records materialise here per run,
            # and snapshot consumers (exporters, merge, diff) treat
            # record payloads as read-only — merge already aliases
            # them across documents.
            "records": [
                {
                    "t": r.time,
                    "component": r.component,
                    "kind": r.kind,
                    "data": r.data,
                }
                for r in self.trace
            ],
        }
        sampler = self.sampler
        if sampler is not None:
            snap["sampling"] = {
                "rate": sampler.rate,
                "kept": sampler.kept,
                "dropped": sampler.dropped,
            }
            exemplars = sampler.exemplars_snapshot()
            if exemplars:
                snap["exemplars"] = exemplars
        return snap


def snapshot_span_kinds(snapshot: Dict[str, Any]) -> List[str]:
    """Distinct span kinds in a snapshot, sorted."""
    from repro.obs.spans import SPAN_COMPONENT

    return sorted(
        {
            r["kind"]
            for r in snapshot.get("records", [])
            if r.get("component") == SPAN_COMPONENT
        }
    )


def snapshot_metric_names(snapshot: Dict[str, Any]) -> List[str]:
    """Distinct metric names in a snapshot, sorted."""
    return sorted({m["name"] for m in snapshot.get("metrics", [])})

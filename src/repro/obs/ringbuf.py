"""Bounded, preallocated ring-buffer sink for hot-path telemetry.

PERF001–004 flag per-event object construction inside the simulator's
hot closure, and the single biggest telemetry offender was exactly
that: every span end and trace record allocated a
:class:`~repro.simcore.trace.TraceRecord` (and every inline counter
update re-resolved its name through the registry) while the event loop
was running.  The ring buffer replaces all of that with one tuple
store into a preallocated slot; records materialise and metric deltas
apply in a single batch at flush time.

Flushes happen when the ring fills, when the run loop finishes, and —
crucially for determinism — whenever the :class:`TraceLog` is read or
written directly (it drains the attached sink first), so consumers
always observe the exact emission order whether or not a sink is
attached.

The sink meters itself with ``obs_overhead_*`` counters so telemetry
cost is observable in every snapshot and gated by
``scripts/obs_overhead.py``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.simcore.trace import TraceLog, TraceRecord

__all__ = ["DEFAULT_RING_CAPACITY", "RingBufferSink"]

#: Default slot count; small enough that a drain is cheap, large
#: enough that a smoke run flushes only a handful of times.
DEFAULT_RING_CAPACITY = 1024


class RingBufferSink:
    """Stages trace records and metric deltas, flushing in batches.

    Args:
        trace: Destination log; the sink registers itself via
            :meth:`TraceLog.attach_sink` so direct emits/reads drain it.
        metrics: Registry receiving batched counter deltas.
        capacity: Ring slot count (records staged before auto-flush).
        sampler: Optional :class:`~repro.obs.sampling.TraceSampler`
            consulted at flush time; sampled-out records never reach
            the log.
    """

    __slots__ = (
        "capacity",
        "sampler",
        "_trace",
        "_metrics",
        "_slots",
        "_n",
        "_deltas",
        "_records_total",
        "_flushes_total",
        "_sampled_out_total",
        "_delta_keys_total",
    )

    def __init__(
        self,
        trace: TraceLog,
        metrics: Any,
        capacity: int = DEFAULT_RING_CAPACITY,
        sampler: Optional[Any] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.capacity = int(capacity)
        self.sampler = sampler
        self._trace = trace
        self._metrics = metrics
        self._slots: list = [None] * self.capacity
        self._n = 0
        self._deltas: Dict[str, float] = {}
        self._records_total = metrics.counter(
            "obs_overhead_records_total",
            "trace records staged through the ring buffer",
        )
        self._flushes_total = metrics.counter(
            "obs_overhead_flushes_total",
            "ring-buffer batch flushes into the trace log/registry",
        )
        self._sampled_out_total = metrics.counter(
            "obs_overhead_sampled_out_total",
            "staged records discarded by the trace sampler at flush",
        )
        self._delta_keys_total = metrics.counter(
            "obs_overhead_metric_deltas_total",
            "distinct counter names applied per batch flush",
        )
        trace.attach_sink(self)

    @property
    def pending(self) -> bool:
        """Whether any staged records or metric deltas await a flush."""
        return self._n > 0 or bool(self._deltas)

    def emit(
        self, t: float, component: str, kind: str, data: Dict[str, Any]
    ) -> None:
        """Stage one trace record (the hot path: one tuple store)."""
        n = self._n
        self._slots[n] = (t, component, kind, data)
        n += 1
        self._n = n
        if n == self.capacity:
            self.flush()

    def count(self, name: str, amount: float = 1.0) -> None:
        """Accumulate a counter delta applied at the next flush."""
        deltas = self._deltas
        deltas[name] = deltas.get(name, 0.0) + amount

    def flush(self) -> int:
        """Materialise staged records and apply deltas; returns appends."""
        staged = self._n
        written = 0
        if staged:
            slots = self._slots
            sampler = self.sampler
            if sampler is None:
                # Bulk materialisation: one list comprehension + one
                # extend beats a per-record append call by ~2x on the
                # flush path the obs-overhead gate meters.
                self._trace.extend([
                    TraceRecord(t, component, kind, data)
                    for t, component, kind, data in slots[:staged]
                ])
                written = staged
            else:
                keep = sampler.keep_record
                kept = [
                    TraceRecord(t, component, kind, data)
                    for t, component, kind, data in slots[:staged]
                    if keep(kind, data)
                ]
                self._trace.extend(kept)
                written = len(kept)
            slots[:staged] = [None] * staged
            self._n = 0
        deltas = self._deltas
        applied = len(deltas)
        if applied:
            counter = self._metrics.counter
            for name in sorted(deltas):
                counter(name).inc(deltas[name])
            deltas.clear()
        if staged or applied:
            self._flushes_total.inc()
            if staged:
                self._records_total.inc(staged)
                if staged != written:
                    self._sampled_out_total.inc(staged - written)
            if applied:
                self._delta_keys_total.inc(applied)
        return written

"""The registered span-kind taxonomy and metric naming convention.

Every span kind is ``subsystem.name`` where the prefix names the
emitting subsystem (and becomes the track in the Chrome trace export).
The ``OBS002`` lint rule checks statically-known span kinds against
:data:`SPAN_KINDS` and metric names against the Prometheus convention
(``_total`` suffix on counters, a unit suffix on gauges/histograms), so
the taxonomy below is the single place a new kind or unit must be
registered.
"""

from __future__ import annotations

#: Subsystems allowed to own span kinds (the prefix before the dot).
SPAN_SUBSYSTEMS = frozenset(
    {"sim", "mntp", "sntp", "link", "server", "channel", "tuner", "fault",
     "health"}
)

#: Every registered span kind.  Emitting an unregistered kind from a
#: string literal is an OBS002 finding.
SPAN_KINDS = frozenset(
    {
        "sim.run",
        "mntp.warmup",
        "mntp.regular",
        "mntp.gate_wait",
        "mntp.query",
        "sntp.exchange",
        "link.transit",
        "server.turnaround",
        "channel.interference",
        "tuner.tune",
        "tuner.eval",
        "fault.episode",
        "health.transition",
    }
)

#: Accepted unit suffixes for gauge / histogram metric names.
METRIC_UNIT_SUFFIXES = (
    "_seconds",
    "_s",
    "_ms",
    "_us",
    "_ns",
    "_ppm",
    "_hz",
    "_db",
    "_dbm",
    "_bytes",
    "_ratio",
    "_percent",
    "_celsius",
)


def span_kind_registered(kind: str) -> bool:
    """Whether ``kind`` is in the registered taxonomy."""
    return kind in SPAN_KINDS


def span_subsystem(kind: str) -> str:
    """The subsystem prefix of a span kind (text before the first dot)."""
    return kind.split(".", 1)[0]


def metric_name_conforms(name: str, metric_type: str) -> bool:
    """Whether ``name`` follows the Prometheus convention for its type.

    Counters must end in ``_total``; gauges and histograms must carry a
    unit suffix from :data:`METRIC_UNIT_SUFFIXES` and must *not* end in
    ``_total`` (that suffix is reserved for counters).
    """
    if metric_type == "counter":
        return name.endswith("_total")
    if name.endswith("_total"):
        return False
    return name.endswith(METRIC_UNIT_SUFFIXES)

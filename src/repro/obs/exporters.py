"""Telemetry snapshot exporters: JSONL, Chrome trace-event, Prometheus.

All three render the plain-dict snapshot produced by
:meth:`repro.obs.telemetry.Telemetry.snapshot`:

* **JSONL** — one self-describing JSON object per line (``meta``,
  ``metric``, ``record``); the archival format ``--telemetry`` writes.
  Key order and float formatting are fixed, so identical runs produce
  byte-identical files.
* **Chrome trace-event** — a JSON document loadable in
  ``chrome://tracing`` / Perfetto; spans become complete (``"X"``)
  events on a per-component track, other records become instants.
* **Prometheus text exposition** — counters/gauges/histograms in the
  scrape format, for eyeballing and for diffing metric sets across
  code versions.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, Iterator, List, Optional

from repro.obs.spans import SPAN_COMPONENT
from repro.obs.telemetry import TELEMETRY_FORMAT


def _dumps(obj: Any) -> str:
    """Canonical JSON encoding (sorted keys, fixed separators)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# -- JSONL ---------------------------------------------------------------


def jsonl_lines(
    snapshot: Dict[str, Any],
    records: Optional[Iterable[Dict[str, Any]]] = None,
    record_count: Optional[int] = None,
) -> Iterator[str]:
    """The JSONL export, line by line (without trailing newlines).

    Record lines are produced one at a time from whatever iterable is
    given — the snapshot's own list by default, or a generator (a
    shard merge, a live trace walk) supplied via ``records`` together
    with its known ``record_count``.  Nothing beyond the line being
    encoded is materialised, so sampled multi-shard exports stay
    O(batch) in memory.
    """
    if records is None:
        records = snapshot.get("records", [])
        record_count = len(records)
    elif record_count is None:
        raise ValueError("record_count is required with an external iterable")
    metrics = snapshot.get("metrics", [])
    yield _dumps(
        {
            "type": "meta",
            "format": snapshot.get("format", TELEMETRY_FORMAT),
            "metric_count": len(metrics),
            "record_count": record_count,
        }
    )
    for metric in metrics:
        # Nested: the metric's own "type" (counter/gauge/...) must not
        # collide with the line discriminator.
        yield _dumps({"type": "metric", "metric": metric})
    sampling = snapshot.get("sampling")
    if sampling:
        yield _dumps({"type": "sampling", "sampling": sampling})
    for name, reservoir in sorted(snapshot.get("exemplars", {}).items()):
        yield _dumps({"type": "exemplar", "name": name, "reservoir": reservoir})
    for record in records:
        yield _dumps({"type": "record", **record})


def write_jsonl(
    snapshot: Dict[str, Any],
    fileobj: IO[str],
    records: Optional[Iterable[Dict[str, Any]]] = None,
    record_count: Optional[int] = None,
) -> int:
    """Write the JSONL export; returns the number of lines written."""
    n = 0
    for line in jsonl_lines(snapshot, records=records, record_count=record_count):
        fileobj.write(line + "\n")
        n += 1
    return n


def stream_jsonl(telemetry: Any, fileobj: IO[str]) -> int:
    """Stream a live bundle's telemetry as JSONL without snapshotting.

    Unlike ``write_jsonl(telemetry.snapshot(), ...)`` this never builds
    the full record-dict list: records are converted and encoded one at
    a time straight off the :class:`~repro.simcore.trace.TraceLog`.
    Returns the number of lines written.
    """
    telemetry.flush()
    snapshot = {
        "format": TELEMETRY_FORMAT,
        "metrics": telemetry.metrics.snapshot(),
    }
    sampler = getattr(telemetry, "sampler", None)
    if sampler is not None:
        snapshot["sampling"] = {
            "rate": sampler.rate,
            "kept": sampler.kept,
            "dropped": sampler.dropped,
        }
        exemplars = sampler.exemplars_snapshot()
        if exemplars:
            snapshot["exemplars"] = exemplars
    return write_jsonl(
        snapshot,
        fileobj,
        records=telemetry.iter_record_dicts(),
        record_count=len(telemetry.trace),
    )


def load_jsonl(fileobj: IO[str]) -> Dict[str, Any]:
    """Rebuild a snapshot dict from a JSONL export.

    Raises:
        ValueError: If the stream is not a telemetry JSONL document.
    """
    meta: Dict[str, Any] = {}
    metrics: List[Dict[str, Any]] = []
    records: List[Dict[str, Any]] = []
    sampling: Dict[str, Any] = {}
    exemplars: Dict[str, Any] = {}
    for lineno, line in enumerate(fileobj, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: not JSON ({exc})") from exc
        kind = obj.get("type") if isinstance(obj, dict) else None
        if kind == "meta":
            meta = obj
        elif kind == "metric":
            metrics.append(dict(obj.get("metric", {})))
        elif kind == "record":
            records.append({k: v for k, v in obj.items() if k != "type"})
        elif kind == "sampling":
            sampling = dict(obj.get("sampling", {}))
        elif kind == "exemplar":
            exemplars[str(obj.get("name", ""))] = dict(obj.get("reservoir", {}))
        else:
            raise ValueError(f"line {lineno}: unknown entry type {kind!r}")
    if meta.get("format") != TELEMETRY_FORMAT:
        raise ValueError(f"not a {TELEMETRY_FORMAT} document")
    snapshot: Dict[str, Any] = {
        "format": TELEMETRY_FORMAT,
        "metrics": metrics,
        "records": records,
    }
    if sampling:
        snapshot["sampling"] = sampling
    if exemplars:
        snapshot["exemplars"] = exemplars
    return snapshot


# -- Chrome trace-event format -------------------------------------------


def chrome_trace_events(snapshot: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Snapshot records as Chrome trace-event objects.

    Span records become complete events (``ph: "X"``) with microsecond
    ``ts``/``dur``; other trace records become instant events
    (``ph: "i"``).  Tracks (``tid``) are assigned per component so the
    viewer lays each subsystem on its own row.
    """
    events: List[Dict[str, Any]] = []
    tids: Dict[str, int] = {}

    def tid_of(component: str) -> int:
        if component not in tids:
            tids[component] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tids[component],
                    "args": {"name": component},
                }
            )
        return tids[component]

    for record in snapshot.get("records", []):
        component = record.get("component", "?")
        data = record.get("data", {})
        if component == SPAN_COMPONENT:
            track = record["kind"].split(".", 1)[0]
            events.append(
                {
                    "name": record["kind"],
                    "cat": SPAN_COMPONENT,
                    "ph": "X",
                    "pid": 1,
                    "tid": tid_of(track),
                    "ts": round(float(data.get("t0", record["t"])) * 1e6, 3),
                    # Zero-duration spans (begin+end in one event) are
                    # legal; clamp so float noise can't go negative,
                    # which the trace viewer rejects.
                    "dur": round(max(0.0, float(data.get("dur", 0.0))) * 1e6, 3),
                    "args": {
                        k: v for k, v in data.items() if k not in ("t0", "t1", "dur")
                    },
                }
            )
        else:
            events.append(
                {
                    "name": f"{component}.{record['kind']}",
                    "cat": component,
                    "ph": "i",
                    "s": "t",
                    "pid": 1,
                    "tid": tid_of(component),
                    "ts": round(float(record["t"]) * 1e6, 3),
                    "args": data,
                }
            )
    return events


def write_chrome_trace(snapshot: Dict[str, Any], fileobj: IO[str]) -> int:
    """Write the Chrome trace JSON; returns the number of events."""
    events = chrome_trace_events(snapshot)
    json.dump(
        {"traceEvents": events, "displayTimeUnit": "ms"},
        fileobj,
        sort_keys=True,
        separators=(",", ":"),
    )
    return len(events)


# -- Prometheus text exposition ------------------------------------------


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus clients do."""
    as_int = int(value)
    return str(as_int) if value == as_int else repr(value)


def _escape_help(text: str) -> str:
    """Escape a HELP string per the exposition format (``\\`` and LF)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    """Escape a label value (``\\``, ``"`` and LF)."""
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def render_prometheus(snapshot: Dict[str, Any]) -> str:
    """Metrics of a snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    for metric in snapshot.get("metrics", []):
        name = metric["name"]
        if metric.get("help"):
            lines.append(f"# HELP {name} {_escape_help(metric['help'])}")
        lines.append(f"# TYPE {name} {metric['type']}")
        if metric["type"] == "histogram":
            running = 0
            for bound, count in zip(metric["bounds"], metric["bucket_counts"]):
                running += count
                le = _escape_label_value(_format_value(float(bound)))
                lines.append(f'{name}_bucket{{le="{le}"}} {running}')
            # +Inf is the sum over *all* buckets (including overflow),
            # which keeps the series monotone even for snapshots whose
            # bucket_counts and bounds are the same length.
            lines.append(
                f'{name}_bucket{{le="+Inf"}} {sum(metric["bucket_counts"])}'
            )
            lines.append(f"{name}_sum {_format_value(metric['sum'])}")
            lines.append(f"{name}_count {metric['count']}")
        else:
            lines.append(f"{name} {_format_value(metric['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")

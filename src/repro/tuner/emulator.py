"""Trace-driven MNTP emulation.

"The emulator is capable of running the MNTP algorithm using the
captured traces and wireless hints and prints the offsets reported by
MNTP."

The emulator replays Algorithm 1 against a recorded
:class:`~repro.tuner.traces.OffsetTrace` for an arbitrary
:class:`~repro.core.config.MntpConfig`: the hint gate defers sampling
instants whose recorded hints miss the thresholds, warm-up rounds use
the multi-source offsets with false-ticker rejection, regular rounds
the single source, and the shared :class:`~repro.core.filter.OffsetFilter`
makes accept/reject decisions.

Reported values are the *clock-corrected* offsets: each accepted
offset's residual against the running trend line — what a clock steered
by MNTP's drift estimate would still be off by.  The RMSE of these
against a perfectly synchronized clock (0 ms) is the tuner's accuracy
metric (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.config import MntpConfig
from repro.core.falsetickers import reject_false_tickers
from repro.core.filter import OffsetFilter
from repro.core.thresholds import favorable_snr_condition
from repro.metrics.stats import rmse


@dataclass
class EmulationResult:
    """Outcome of one emulated configuration.

    Attributes:
        reported: (time, corrected offset) pairs for accepted samples
            past bootstrap.
        raw_accepted: (time, raw offset) pairs for all accepted samples.
        rejected: (time, raw offset) pairs the filter rejected.
        deferred: Sampling instants skipped by the hint gate.
        requests: SNTP requests the configuration generated.
        resets: Full algorithm restarts (reset period expiries).
        warmup_completions: Times the warm-up phase finished.
    """

    reported: List[Tuple[float, float]] = field(default_factory=list)
    raw_accepted: List[Tuple[float, float]] = field(default_factory=list)
    rejected: List[Tuple[float, float]] = field(default_factory=list)
    deferred: int = 0
    requests: int = 0
    resets: int = 0
    warmup_completions: int = 0

    def rmse(self) -> float:
        """RMSE of the corrected offsets vs a perfect clock (seconds)."""
        return rmse([offset for _, offset in self.reported])

    def rmse_ms(self) -> float:
        """RMSE in milliseconds (Table 2's unit)."""
        return self.rmse() * 1000.0


class MntpEmulator:
    """Replays MNTP over a trace for one configuration."""

    def __init__(self, trace, config: MntpConfig) -> None:
        self.trace = trace
        self.config = config

    def run(self) -> EmulationResult:
        """Execute the replay."""
        cfg = self.config
        result = EmulationResult()
        fil = OffsetFilter(
            min_samples=cfg.min_warmup_samples,
            gate_floor=cfg.filter_gate_floor,
            max_consecutive_rejections=cfg.max_consecutive_rejections,
            two_sided=cfg.two_sided_rejection,
            reestimate_every_sample=cfg.reestimate_every_sample,
        )
        entries = list(self.trace)
        if not entries:
            return result
        start = entries[0].time
        phase = "warmup"
        phase_start = start
        algorithm_start = start
        next_action = start

        for entry in entries:
            if entry.time < next_action:
                continue

            # Reset check (Algorithm 1 step 23).
            if entry.time - algorithm_start >= cfg.reset_period:
                fil.reset()
                phase = "warmup"
                phase_start = entry.time
                algorithm_start = entry.time
                result.resets += 1

            # Warm-up completion check (step 11).
            if phase == "warmup" and entry.time - phase_start >= cfg.warmup_period:
                phase = "regular"
                phase_start = entry.time
                result.warmup_completions += 1

            # Hint gate (steps 5 / 17): a deferred instant retries at the
            # next trace entry without consuming the wait time.
            if cfg.enable_hint_gate and not favorable_snr_condition(
                entry.hints, cfg.thresholds
            ):
                result.deferred += 1
                continue

            if phase == "warmup":
                offsets = {
                    source: value
                    for source, value in entry.offsets.items()
                    if source in cfg.warmup_pools and value is not None
                }
                result.requests += len(
                    [s for s in entry.offsets if s in cfg.warmup_pools]
                )
                if offsets:
                    verdict = reject_false_tickers(offsets)
                    self._offer(fil, entry.time, verdict.combined_offset, result)
                next_action = entry.time + cfg.warmup_wait_time
            else:
                value = entry.offsets.get(cfg.regular_source)
                if value is None and entry.offsets:
                    # Fall back to any responding source; a real MNTP
                    # would retry, the trace only has what was recorded.
                    value = next(
                        (v for v in entry.offsets.values() if v is not None), None
                    )
                result.requests += 1
                if value is not None:
                    self._offer(fil, entry.time, value, result)
                next_action = entry.time + cfg.regular_wait_time

        return result

    def _offer(
        self, fil: OffsetFilter, time: float, offset: float, result: EmulationResult
    ) -> None:
        if not self.config.enable_filter:
            fil.trend.add(time, offset)
            result.raw_accepted.append((time, offset))
            predicted = fil.trend.predict(time)
            if predicted is not None:
                result.reported.append((time, offset - predicted))
            return
        outcome = fil.offer(time, offset)
        if outcome.decision.accepted:
            result.raw_accepted.append((time, offset))
            if outcome.predicted == outcome.predicted:  # not NaN
                result.reported.append((time, offset - outcome.predicted))
        else:
            result.rejected.append((time, offset))

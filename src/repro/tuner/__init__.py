"""The MNTP tuner (§5.3): logger, emulator, searcher.

* :class:`TraceLogger` runs on the testbed's target node, emitting SNTP
  requests to multiple reference clocks every 5 s and recording the
  responses plus the wireless hints — the tuner's input trace.
* :class:`MntpEmulator` replays the MNTP algorithm over a recorded
  trace for any parameter choice, with virtual clock corrections so the
  reported offsets reflect what a corrected clock would have seen.
* :class:`ParameterSearcher` grid-searches the four MNTP parameters,
  scoring each configuration by the RMSE of its reported offsets
  against a perfectly synchronized clock (0 ms) and counting the
  requests it generates (Table 2's two metrics).
"""

from repro.tuner.traces import OffsetTrace, TraceEntry
from repro.tuner.logger import TraceLogger, LoggerOptions
from repro.tuner.emulator import MntpEmulator, EmulationResult
from repro.tuner.searcher import ParameterSearcher, SearchSpace, SearchResult
from repro.tuner.autotune import AutoTuner, AutoTuneOptions, TuneOutcome

__all__ = [
    "OffsetTrace",
    "TraceEntry",
    "TraceLogger",
    "LoggerOptions",
    "MntpEmulator",
    "EmulationResult",
    "ParameterSearcher",
    "SearchSpace",
    "SearchResult",
    "AutoTuner",
    "AutoTuneOptions",
    "TuneOutcome",
]

"""The tuner's search component.

"When provided with a range of values for the input parameters ... the
search component generates all possible values of the parameters and
invokes the emulator for each generated combination", then scores each
configuration by the RMSE of the reported offsets against a perfectly
synchronized clock and the number of requests generated (Table 2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.config import MntpConfig
from repro.obs.telemetry import Telemetry
from repro.tuner.emulator import MntpEmulator
from repro.tuner.traces import OffsetTrace


@dataclass(frozen=True)
class SearchSpace:
    """Candidate values (seconds) for the four MNTP parameters.

    Defaults span Table 2's sampled configurations.
    """

    warmup_periods: Sequence[float] = (30 * 60, 40 * 60, 50 * 60, 70 * 60, 90 * 60, 240 * 60)
    warmup_wait_times: Sequence[float] = (0.084 * 60, 0.25 * 60)
    regular_wait_times: Sequence[float] = (15 * 60, 30 * 60)
    reset_periods: Sequence[float] = (240 * 60,)

    def combinations(self) -> "List[tuple[float, float, float, float]]":
        """Cartesian product, skipping degenerate combinations where
        the warm-up does not fit in the reset period."""
        out = []
        for wp, ww, rw, rp in itertools.product(
            self.warmup_periods,
            self.warmup_wait_times,
            self.regular_wait_times,
            self.reset_periods,
        ):
            if wp > rp:
                continue
            out.append((wp, ww, rw, rp))
        return out


@dataclass
class SearchResult:
    """One evaluated configuration.

    Attributes:
        config: The parameter combination.
        rmse_ms: Accuracy score (Table 2's RMSE column).
        requests: Request count (Table 2's last column).
        reported_count: Accepted, corrected offsets entering the RMSE.
    """

    config: MntpConfig
    rmse_ms: float
    requests: int
    reported_count: int

    def row(self) -> "tuple[float, float, float, float, float, int]":
        """Table-2-shaped row: parameters in minutes, RMSE, requests."""
        c = self.config
        return (
            c.warmup_period / 60,
            c.warmup_wait_time / 60,
            c.regular_wait_time / 60,
            c.reset_period / 60,
            self.rmse_ms,
            self.requests,
        )


@dataclass
class ParameterSearcher:
    """Exhaustive grid search over a :class:`SearchSpace`.

    Attributes:
        trace: The recorded trace to replay.
        base_config: Template whose non-swept fields (thresholds,
            toggles) every candidate inherits.
        space: The grid.
        telemetry: Optional telemetry bundle; each evaluation becomes a
            ``tuner.eval`` span and bumps ``tuner_evaluations_total``.
            A :meth:`Telemetry.standalone` bundle (manual clock) keeps
            the coordinates deterministic — there is no virtual clock
            during offline grid search.
    """

    trace: OffsetTrace
    base_config: MntpConfig = field(default_factory=MntpConfig)
    space: SearchSpace = field(default_factory=SearchSpace)
    telemetry: Optional[Telemetry] = None

    def search(self) -> List[SearchResult]:
        """Evaluate every combination; results sorted best-RMSE first."""
        results: List[SearchResult] = []
        for wp, ww, rw, rp in self.space.combinations():
            config = self.base_config.with_overrides(
                warmup_period=wp,
                warmup_wait_time=ww,
                regular_wait_time=rw,
                reset_period=rp,
            )
            results.append(self.evaluate(config))
        results.sort(key=lambda r: r.rmse_ms)
        return results

    def evaluate(self, config: MntpConfig) -> SearchResult:
        """Score a single configuration (used for Table 2's rows)."""
        span = None
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "tuner_evaluations_total",
                "configurations scored by the parameter searcher",
            ).inc()
            span = self.telemetry.spans.begin(
                "tuner.eval",
                warmup_period=config.warmup_period,
                warmup_wait_time=config.warmup_wait_time,
                regular_wait_time=config.regular_wait_time,
                reset_period=config.reset_period,
            )
        emulation = MntpEmulator(self.trace, config).run()
        result = SearchResult(
            config=config,
            rmse_ms=emulation.rmse_ms(),
            requests=emulation.requests,
            reported_count=len(emulation.reported),
        )
        if span is not None:
            if self.telemetry.manual:
                self.telemetry.advance()
            span.end(rmse_ms=round(result.rmse_ms, 6), requests=result.requests)
        return result

"""Tuner trace format.

A trace is a time-ordered list of sampling instants; each entry carries
the wireless hints at that instant and the per-source SNTP offsets
(None where the query failed).  Serialised as JSON Lines so traces from
long experiments stream naturally.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, IO, Iterator, List, Optional

from repro.wireless.hints import WirelessHints


@dataclass
class TraceEntry:
    """One sampling instant.

    Attributes:
        time: Seconds since trace start.
        rssi_dbm / noise_dbm: Wireless hints at request time.
        offsets: Per-source measured offset (seconds) or None if the
            query failed/timed out.
        true_offset: Ground-truth clock offset if the logger ran inside
            the simulator (None for real-world traces).
    """

    time: float
    rssi_dbm: float
    noise_dbm: float
    offsets: Dict[str, Optional[float]] = field(default_factory=dict)
    true_offset: Optional[float] = None

    @property
    def hints(self) -> WirelessHints:
        """The entry's hints as a :class:`WirelessHints`."""
        return WirelessHints(rssi_dbm=self.rssi_dbm, noise_dbm=self.noise_dbm)

    def to_json(self) -> str:
        """One-line JSON encoding."""
        return json.dumps(
            {
                "time": self.time,
                "rssi": self.rssi_dbm,
                "noise": self.noise_dbm,
                "offsets": self.offsets,
                "true_offset": self.true_offset,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "TraceEntry":
        """Parse one JSONL line."""
        data = json.loads(line)
        return cls(
            time=float(data["time"]),
            rssi_dbm=float(data["rssi"]),
            noise_dbm=float(data["noise"]),
            offsets={k: v for k, v in data.get("offsets", {}).items()},
            true_offset=data.get("true_offset"),
        )


class OffsetTrace:
    """An ordered collection of :class:`TraceEntry` rows."""

    def __init__(self, entries: Optional[List[TraceEntry]] = None,
                 cadence: float = 5.0) -> None:
        self.entries = entries or []
        self.cadence = cadence

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def append(self, entry: TraceEntry) -> None:
        """Append an entry (must not go backwards in time)."""
        if self.entries and entry.time < self.entries[-1].time:
            raise ValueError("trace entries must be time-ordered")
        self.entries.append(entry)

    @property
    def duration(self) -> float:
        """Span covered by the trace (seconds)."""
        if not self.entries:
            return 0.0
        return self.entries[-1].time - self.entries[0].time

    def sources(self) -> List[str]:
        """All source names appearing anywhere in the trace."""
        names: List[str] = []
        for entry in self.entries:
            for name in entry.offsets:
                if name not in names:
                    names.append(name)
        return names

    # -- serialisation ------------------------------------------------------

    def save(self, fileobj: IO[str]) -> None:
        """Write as JSON Lines (first line is a header record)."""
        fileobj.write(json.dumps({"format": "mntp-trace-v1", "cadence": self.cadence}))
        fileobj.write("\n")
        for entry in self.entries:
            fileobj.write(entry.to_json())
            fileobj.write("\n")

    @classmethod
    def load(cls, fileobj: IO[str]) -> "OffsetTrace":
        """Read a JSONL trace."""
        header_line = fileobj.readline()
        if not header_line:
            return cls()
        header = json.loads(header_line)
        if header.get("format") != "mntp-trace-v1":
            raise ValueError("not an MNTP trace file")
        trace = cls(cadence=float(header.get("cadence", 5.0)))
        for line in fileobj:
            line = line.strip()
            if line:
                trace.append(TraceEntry.from_json(line))
        return trace

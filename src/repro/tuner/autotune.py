"""Self-tuning of MNTP parameters (the paper's §7 future work).

"We also plan to investigate self-tuning of parameter settings and ...
to evaluate the trade-offs between MNTP's performance and the tuning of
its parameters."

:class:`AutoTuner` closes the loop the paper left open: given a
recorded trace (or a rolling window of one), it grid-searches the
parameter space, computes the accuracy/request-count trade-off, and
recommends the cheapest configuration meeting an accuracy target — or,
dually, the most accurate configuration within a request budget.  The
Pareto front of (requests, RMSE) quantifies the §5.3 trade-off
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.config import MntpConfig
from repro.obs.telemetry import Telemetry
from repro.tuner.searcher import ParameterSearcher, SearchResult, SearchSpace
from repro.tuner.traces import OffsetTrace


@dataclass(frozen=True)
class AutoTuneOptions:
    """Objective and constraints for a tuning pass.

    Attributes:
        target_rmse_ms: Accuracy the user's applications need; the
            tuner picks the *cheapest* configuration achieving it.
        max_requests_per_hour: Optional budget (battery constraint);
            configurations above it are excluded.
        min_reported: Configurations reporting fewer corrected offsets
            than this are considered unevaluated and skipped.
    """

    target_rmse_ms: float = 10.0
    max_requests_per_hour: Optional[float] = None
    min_reported: int = 5


@dataclass
class TuneOutcome:
    """Result of one tuning pass.

    Attributes:
        recommended: The chosen configuration (None if nothing viable).
        evaluated: All scored configurations.
        pareto: The (requests, RMSE) Pareto-efficient subset, sorted by
            request count.
        met_target: Whether the recommendation meets the RMSE target
            (otherwise it is the most accurate affordable one).
    """

    recommended: Optional[MntpConfig]
    evaluated: List[SearchResult] = field(default_factory=list)
    pareto: List[SearchResult] = field(default_factory=list)
    met_target: bool = False


class AutoTuner:
    """Grid-search-based parameter self-tuning over a trace."""

    def __init__(
        self,
        space: SearchSpace = SearchSpace(),
        base_config: MntpConfig = MntpConfig(),
        options: AutoTuneOptions = AutoTuneOptions(),
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.space = space
        self.base_config = base_config
        self.options = options
        self.telemetry = telemetry

    def tune(self, trace: OffsetTrace) -> TuneOutcome:
        """Run one tuning pass over ``trace``."""
        tune_span = (
            self.telemetry.spans.begin("tuner.tune", entries=len(trace.entries))
            if self.telemetry is not None
            else None
        )
        searcher = ParameterSearcher(
            trace,
            base_config=self.base_config,
            space=self.space,
            telemetry=self.telemetry,
        )
        results = [
            r for r in searcher.search()
            if r.reported_count >= self.options.min_reported
        ]
        duration_h = max(trace.duration / 3600.0, 1e-9)
        affordable = results
        if self.options.max_requests_per_hour is not None:
            affordable = [
                r for r in results
                if r.requests / duration_h <= self.options.max_requests_per_hour
            ]
        pareto = self._pareto(results)
        if not affordable:
            outcome = TuneOutcome(recommended=None, evaluated=results, pareto=pareto)
        else:
            meeting = [
                r for r in affordable if r.rmse_ms <= self.options.target_rmse_ms
            ]
            if meeting:
                # Cheapest configuration that meets the target.
                best = min(meeting, key=lambda r: (r.requests, r.rmse_ms))
                outcome = TuneOutcome(
                    recommended=best.config, evaluated=results, pareto=pareto,
                    met_target=True,
                )
            else:
                # Target unreachable within budget: most accurate affordable.
                best = min(affordable, key=lambda r: r.rmse_ms)
                outcome = TuneOutcome(
                    recommended=best.config, evaluated=results, pareto=pareto,
                    met_target=False,
                )
        if tune_span is not None:
            tune_span.end(
                evaluated=len(results),
                met_target=outcome.met_target,
                recommended=outcome.recommended is not None,
            )
        return outcome

    def tune_window(self, trace: OffsetTrace, window: float) -> TuneOutcome:
        """Tune over only the most recent ``window`` seconds of the
        trace — the rolling-window mode an in-situ deployment would run
        periodically."""
        if window <= 0:
            raise ValueError("window must be positive")
        if not trace.entries:
            return self.tune(trace)
        cutoff = trace.entries[-1].time - window
        recent = OffsetTrace(
            entries=[e for e in trace.entries if e.time >= cutoff],
            cadence=trace.cadence,
        )
        return self.tune(recent)

    @staticmethod
    def _pareto(results: List[SearchResult]) -> List[SearchResult]:
        """Pareto-efficient subset: no other config has both fewer
        requests and lower RMSE."""
        ordered = sorted(results, key=lambda r: (r.requests, r.rmse_ms))
        front: List[SearchResult] = []
        best_rmse = float("inf")
        for result in ordered:
            if result.rmse_ms < best_rmse:
                front.append(result)
                best_rmse = result.rmse_ms
        return front

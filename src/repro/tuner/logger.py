"""The tuner's logging component.

"The logging component runs on the TN of our testbed and emits SNTP
requests to multiple reference clocks every 5 seconds and records the
responses in the form of traces. It also records the corresponding
wireless hints from the channel every time an SNTP request is emitted."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.ntp.sntp_client import SntpResult
from repro.simcore.simulator import Simulator
from repro.testbed.nodes import Testbed, TestbedOptions
from repro.tuner.traces import OffsetTrace, TraceEntry


@dataclass
class LoggerOptions:
    """Trace-collection knobs.

    Attributes:
        duration: Seconds of trace to record (paper: the 4 h run).
        cadence: Seconds between sampling instants (paper: 5 s).
        sources: Reference clocks queried in parallel each instant.
        testbed: Environment the TN runs in (free-running clock by
            default, matching the §5.2 longer experiment).
    """

    duration: float = 4 * 3600.0
    cadence: float = 5.0
    sources: Sequence[str] = (
        "0.pool.ntp.org",
        "1.pool.ntp.org",
        "3.pool.ntp.org",
    )
    testbed: TestbedOptions = field(
        default_factory=lambda: TestbedOptions(wireless=True, ntp_correction=False)
    )


class TraceLogger:
    """Collects an :class:`OffsetTrace` from a simulated testbed run."""

    def __init__(self, seed: int = 0, options: LoggerOptions = LoggerOptions()) -> None:
        self.seed = seed
        self.options = options

    def run(self) -> OffsetTrace:
        """Execute the collection run and return the trace."""
        opts = self.options
        sim = Simulator(seed=self.seed)
        testbed = Testbed(sim, opts.testbed)
        trace = OffsetTrace(cadence=opts.cadence)
        client = testbed.mntp_app

        def sample() -> None:
            if sim.now >= opts.duration:
                return
            hints = testbed.hints.read_hints()
            entry = TraceEntry(
                time=sim.now,
                rssi_dbm=hints.rssi_dbm,
                noise_dbm=hints.noise_dbm,
                true_offset=testbed.tn_clock.true_offset(),
            )
            outstanding = {"count": len(opts.sources)}
            results: Dict[str, Optional[float]] = {}

            def make_cb(source: str):
                def on_result(result: SntpResult) -> None:
                    if result.ok:
                        assert result.sample is not None
                        results[source] = result.sample.offset
                    else:
                        results[source] = None
                    outstanding["count"] -= 1
                    if outstanding["count"] == 0:
                        entry.offsets = dict(results)
                        trace.append(entry)

                return on_result

            for source in opts.sources:
                client.query(source, make_cb(source), timeout=2.0)
            sim.call_after(opts.cadence, sample, label="tuner:sample")

        testbed.start_background()
        sim.call_after(0.0, sample, label="tuner:sample")
        sim.run_until(opts.duration + 5.0)  # let the final queries resolve
        testbed.stop_background()
        return trace

"""Named experiment scenarios matching the paper's figures.

Each scenario pins the environment switches and protocol configuration
for one experimental condition; the figure benches combine one or two
scenarios into the published comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.clock.temperature import DiurnalTemperature
from repro.core.config import MntpConfig
from repro.faults.chaos import chaos_mntp_config, default_fault_matrix
from repro.ntp.sntp_client import HardeningPolicy
from repro.testbed.experiment import ExperimentResult, ExperimentRunner
from repro.testbed.nodes import TestbedOptions


@dataclass(frozen=True)
class Scenario:
    """A reproducible experimental condition.

    Attributes:
        name: Scenario identifier.
        description: What paper condition it reproduces.
        duration: Virtual seconds.
        options_factory: Builds the testbed options.
        mntp_config_factory: Builds the MNTP config, or None for
            SNTP-only runs.
        run_sntp: Whether the unmodified SNTP client also runs.
        cadence: Request cadence in seconds.
    """

    name: str
    description: str
    duration: float
    options_factory: Callable[[], TestbedOptions]
    mntp_config_factory: Optional[Callable[[], MntpConfig]] = None
    run_sntp: bool = True
    cadence: float = 5.0


def _headtohead_mntp() -> MntpConfig:
    """§5.1 head-to-head config: 5 s cadence, no phases, no drift or
    clock correction, gate + filter active."""
    return MntpConfig.baseline_headtohead(cadence_s=5.0)


def _insitu_mntp() -> MntpConfig:
    """24-hour in-situ config: realistic paced parameters (Table-2
    config-1 class) with clock and drift correction enabled — the
    deployment mode, not the measurement mode."""
    return MntpConfig(
        warmup_period=30 * 60.0,
        warmup_wait_time=15.0,
        regular_wait_time=15 * 60.0,
        reset_period=240 * 60.0,
        enable_clock_correction=True,
        enable_drift_correction=True,
    )


def _longrun_mntp() -> MntpConfig:
    """§5.2 4-hour config: as head-to-head but with the drift estimate
    maintained (corrected drift values are computed in software)."""
    return MntpConfig.baseline_headtohead(cadence_s=5.0).with_overrides(
        enable_drift_correction=True
    )


SCENARIOS: Dict[str, Scenario] = {
    "wired_corrected": Scenario(
        name="wired_corrected",
        description="Fig 4 (left, wired): SNTP on wired network, ntpd "
        "disciplining the TN clock",
        duration=3600.0,
        options_factory=lambda: TestbedOptions(wireless=False, ntp_correction=True),
    ),
    "wired_uncorrected": Scenario(
        name="wired_uncorrected",
        description="Fig 4 (right, wired): SNTP on wired network, clock "
        "free-running",
        duration=3600.0,
        options_factory=lambda: TestbedOptions(wireless=False, ntp_correction=False),
    ),
    "wireless_corrected": Scenario(
        name="wireless_corrected",
        description="Fig 4 (left, wireless): SNTP over the degraded "
        "wireless hop, ntpd disciplining the TN clock",
        duration=3600.0,
        options_factory=lambda: TestbedOptions(wireless=True, ntp_correction=True),
    ),
    "wireless_uncorrected": Scenario(
        name="wireless_uncorrected",
        description="Fig 4 (right, wireless): SNTP over the degraded "
        "wireless hop, clock free-running",
        duration=3600.0,
        options_factory=lambda: TestbedOptions(wireless=True, ntp_correction=False),
    ),
    "mntp_wireless_corrected": Scenario(
        name="mntp_wireless_corrected",
        description="Fig 6/7: SNTP vs MNTP head-to-head on wireless with "
        "NTP clock correction",
        duration=3600.0,
        options_factory=lambda: TestbedOptions(wireless=True, ntp_correction=True),
        mntp_config_factory=_headtohead_mntp,
    ),
    "mntp_wireless_uncorrected": Scenario(
        name="mntp_wireless_uncorrected",
        description="Fig 8: SNTP vs MNTP head-to-head on wireless, clock "
        "free-running",
        duration=3600.0,
        options_factory=lambda: TestbedOptions(wireless=True, ntp_correction=False),
        mntp_config_factory=_headtohead_mntp,
    ),
    "mntp_longrun": Scenario(
        name="mntp_longrun",
        description="Fig 12: 4-hour SNTP vs MNTP on wireless, clock "
        "free-running, drift estimation active",
        duration=4 * 3600.0,
        options_factory=lambda: TestbedOptions(wireless=True, ntp_correction=False),
        mntp_config_factory=_longrun_mntp,
    ),
    "mntp_insitu_24h": Scenario(
        name="mntp_insitu_24h",
        description="Extension (§7 in-situ): 24 h of deployed MNTP "
        "correcting a free-running clock through diurnal temperature "
        "and round-the-clock channel hostility",
        duration=24 * 3600.0,
        options_factory=lambda: TestbedOptions(
            wireless=True,
            ntp_correction=False,
            temperature=DiurnalTemperature(mean_c=26.0, amplitude_c=8.0),
        ),
        mntp_config_factory=_insitu_mntp,
        cadence=60.0,  # ground truth sampled per minute over the day
    ),
    "chaos_smoke": Scenario(
        name="chaos_smoke",
        description="Robustness showcase: the smoke fault matrix "
        "(blackout, upstream step, zeroed timestamps) against the "
        "hardened MNTP client on the wired topology — the full "
        "survival report comes from 'repro-mntp chaos'",
        duration=1440.0,
        options_factory=lambda: TestbedOptions(
            wireless=False,
            ntp_correction=False,
            monitor_active=False,
            fault_schedule=default_fault_matrix(smoke=True),
            mntp_hardening=HardeningPolicy(),
        ),
        mntp_config_factory=chaos_mntp_config,
    ),
    "mntp_falsetickers": Scenario(
        name="mntp_falsetickers",
        description="Extension: warm-up false-ticker rejection with one "
        "biased member per pool",
        duration=3600.0,
        options_factory=lambda: TestbedOptions(
            wireless=True, ntp_correction=True, include_falseticker=True
        ),
        mntp_config_factory=_headtohead_mntp,
    ),
}


def run_scenario(
    name: str,
    seed: int = 0,
    sample_rate: Optional[int] = None,
    ring_capacity: Optional[int] = None,
    health_spec=None,
    on_health=None,
) -> ExperimentResult:
    """Run a named scenario and return its result.

    Args:
        name: Key into :data:`SCENARIOS`.
        seed: Root seed for the run.
        sample_rate: Optional 1-in-N trace sampling (see
            :mod:`repro.obs.sampling`).
        ring_capacity: Optional telemetry ring-buffer size override.
        health_spec: Optional :class:`repro.obs.health.SloSpec`; attaches
            a streaming health monitor whose verdict lands on the
            result's ``health`` field.
        on_health: Optional per-evaluation callback (``run --watch``);
            implies monitoring with the default spec.
    """
    scenario = SCENARIOS[name]
    runner = ExperimentRunner(
        seed=seed,
        options=scenario.options_factory(),
        duration=scenario.duration,
        sntp_cadence=scenario.cadence,
        run_sntp=scenario.run_sntp,
        mntp_config=(
            scenario.mntp_config_factory()
            if scenario.mntp_config_factory is not None
            else None
        ),
        sample_rate=sample_rate,
        ring_capacity=ring_capacity,
        health_spec=health_spec,
        on_health=on_health,
    )
    return runner.run()

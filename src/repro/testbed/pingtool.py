"""Simulated ping.

The TN "sends statistics collected through active measurement to the MN
using tools like ping".  :class:`PingTool` probes a destination across
the same wireless+internet path the NTP traffic uses and keeps a rolling
window of RTTs and losses for the monitor node to read.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from repro.simcore.simulator import Simulator


@dataclass(frozen=True)
class PingStats:
    """Rolling-window summary the TN reports to the MN.

    Attributes:
        sent / received: Probe counts in the window.
        loss_fraction: 1 - received/sent (0 with no probes).
        mean_rtt: Mean RTT of received probes (seconds; 0 if none).
        max_rtt: Max RTT in the window (seconds; 0 if none).
    """

    sent: int
    received: int
    loss_fraction: float
    mean_rtt: float
    max_rtt: float


class PingTool:
    """Periodic probe generator over a caller-supplied RTT sampler.

    Args:
        sim: Simulation kernel.
        probe_fn: Callable performing one probe; it must invoke the
            given callback with the RTT in seconds, or ``None`` on loss.
        interval: Probe period (seconds).
        window: Number of most-recent probes summarised in stats.
    """

    def __init__(
        self,
        sim: Simulator,
        probe_fn: Callable[[Callable[[Optional[float]], None]], None],
        interval: float = 1.0,
        window: int = 20,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._sim = sim
        self._probe_fn = probe_fn
        self.interval = interval
        self._results: Deque[Optional[float]] = deque(maxlen=window)
        self._running = False

    def start(self) -> None:
        """Begin probing."""
        self._running = True
        self._sim.call_after(0.0, self._probe, label="ping:probe")

    def stop(self) -> None:
        """Cease probing."""
        self._running = False

    def _probe(self) -> None:
        if not self._running:
            return

        def on_result(rtt: Optional[float]) -> None:
            self._results.append(rtt)

        self._probe_fn(on_result)
        self._sim.call_after(self.interval, self._probe, label="ping:probe")

    def stats(self) -> PingStats:
        """Summarise the current window."""
        sent = len(self._results)
        rtts = [r for r in self._results if r is not None]
        received = len(rtts)
        return PingStats(
            sent=sent,
            received=received,
            loss_fraction=0.0 if sent == 0 else 1.0 - received / sent,
            mean_rtt=sum(rtts) / received if received else 0.0,
            max_rtt=max(rtts) if rtts else 0.0,
        )

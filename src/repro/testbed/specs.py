"""Declarative, JSON-round-trippable scenario specifications.

A :class:`ScenarioSpec` is the data-file form of a testbed experiment:
topology switches, wireless regime, request cadence, duration, the
MNTP/SNTP/hardening configuration, an embedded
:class:`~repro.faults.schedule.FaultSchedule`, and a *guarantees* block
that embeds :class:`~repro.obs.health.SloSpec` verbatim — the health
layer already defines the declarative, unit-suffixed guarantee schema,
so specs reuse it rather than inventing a second one.

Guarantees come in two tiers, after boardfarm-bdd's Success/Minimal
Guarantee rule:

* ``guarantees`` — the Success tier.  The run is judged healthy only
  when its :class:`~repro.obs.health.HealthMonitor` verdict against
  this spec is not ``violated``.
* ``minimal_guarantees`` — the optional Minimal tier.  When the
  Success tier is violated, the archived telemetry is replayed against
  this (laxer) spec; holding it downgrades the outcome to ``minimal``
  instead of a hard ``failed``.

Validation mirrors ``SloSpec``: unknown keys are rejected at every
nesting level, numeric fields carry unit suffixes (``duration_s``,
``cadence_s``, ``initial_clock_offset_s``), and error messages name the
offending path so a typo'd spec fails loudly instead of silently
running the wrong experiment.

:func:`spec_for_scenario` derives a spec from every named scenario in
:mod:`repro.testbed.scenarios`, :func:`chaos_matrix_spec` expresses the
full 12-episode chaos matrix, and :func:`write_default_specs` emits
them all as JSON files (the repo checks them in under ``scenarios/``).
The matrix runner (:mod:`repro.testbed.matrix`) executes a directory of
these files and aggregates the verdicts.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.clock.temperature import (
    ConstantTemperature,
    DiurnalTemperature,
    RampTemperature,
    TemperatureProfile,
)
from repro.core.config import HintThresholds, MntpConfig
from repro.faults.chaos import chaos_mntp_config, default_fault_matrix
from repro.faults.schedule import FaultEpisode, FaultSchedule
from repro.ntp.sntp_client import HardeningPolicy
from repro.obs.health import HealthMonitor, SloSpec, replay_health, smoke_spec
from repro.testbed.experiment import ExperimentResult, ExperimentRunner
from repro.testbed.nodes import TestbedOptions
from repro.testbed.scenarios import SCENARIOS

#: Format tag carried by every spec document.
SPEC_FORMAT = "mntp-scenario-spec-v1"

#: Judgement statuses in tier order; ``success`` and ``minimal`` keep
#: the matrix green, everything else is a hard failure.
JUDGEMENT_STATUSES = ("success", "minimal", "failed")


def _reject_unknown_keys(
    data: Dict[str, Any], known: Any, where: str
) -> None:
    """Raise a path-carrying error when ``data`` has unexpected keys."""
    unknown = sorted(set(data) - set(known))
    if unknown:
        raise ValueError(
            f"{where}: unknown keys {unknown}; known keys are "
            f"{sorted(known)}"
        )


def _require_mapping(value: Any, where: str) -> Dict[str, Any]:
    """Raise unless ``value`` is a JSON object; return it typed."""
    if not isinstance(value, dict):
        raise ValueError(f"{where} must be a JSON object, got "
                         f"{type(value).__name__}")
    return value


# -- temperature profiles --------------------------------------------------

#: Spec-file profile names mapped to (class, unit-suffixed spec keys,
#: constructor keyword per key).  Spec keys follow the unit-suffix
#: convention even where the constructor predates it (``celsius_c``).
_TEMPERATURE_PROFILES: Dict[str, Tuple[type, Tuple[Tuple[str, str], ...]]] = {
    "constant": (ConstantTemperature, (("celsius_c", "celsius"),)),
    "diurnal": (
        DiurnalTemperature,
        (("mean_c", "mean_c"), ("amplitude_c", "amplitude_c"),
         ("period_s", "period_s"), ("phase_s", "phase_s")),
    ),
    "ramp": (
        RampTemperature,
        (("start_c", "start_c"), ("end_c", "end_c"),
         ("ramp_duration_s", "ramp_duration_s")),
    ),
}


def _temperature_to_dict(profile: TemperatureProfile) -> Dict[str, Any]:
    """Serialize a temperature profile to its spec-file form."""
    for name, (cls, keys) in _TEMPERATURE_PROFILES.items():
        if type(profile) is cls:
            out: Dict[str, Any] = {"profile": name}
            for spec_key, attr in keys:
                out[spec_key] = getattr(profile, attr)
            return out
    raise ValueError(
        f"temperature profile {type(profile).__name__} has no spec-file "
        "form; supported profiles: "
        f"{sorted(_TEMPERATURE_PROFILES)}"
    )


def _temperature_from_dict(
    data: Dict[str, Any], where: str
) -> TemperatureProfile:
    """Rebuild a temperature profile; unknown profiles/keys raise."""
    data = _require_mapping(data, where)
    name = data.get("profile")
    if name not in _TEMPERATURE_PROFILES:
        raise ValueError(
            f"{where}.profile must be one of "
            f"{sorted(_TEMPERATURE_PROFILES)}, got {name!r}"
        )
    cls, keys = _TEMPERATURE_PROFILES[name]
    _reject_unknown_keys(data, {"profile", *(k for k, _ in keys)}, where)
    kwargs = {attr: float(data[spec_key])
              for spec_key, attr in keys if spec_key in data}
    return cls(**kwargs)


# -- embedded config blocks ------------------------------------------------


def _mntp_to_dict(config: MntpConfig) -> Dict[str, Any]:
    """Serialize an :class:`MntpConfig` field-for-field."""
    out: Dict[str, Any] = {}
    for f in fields(MntpConfig):
        value = getattr(config, f.name)
        if f.name == "thresholds":
            out[f.name] = {tf.name: getattr(value, tf.name)
                           for tf in fields(HintThresholds)}
        elif f.name == "warmup_pools":
            out[f.name] = list(value)
        else:
            out[f.name] = value
    return out


def _mntp_from_dict(data: Dict[str, Any], where: str) -> MntpConfig:
    """Rebuild an :class:`MntpConfig`; unknown keys raise."""
    data = _require_mapping(data, where)
    _reject_unknown_keys(data, {f.name for f in fields(MntpConfig)}, where)
    kwargs = dict(data)
    if "thresholds" in kwargs:
        thresholds = _require_mapping(kwargs["thresholds"],
                                      f"{where}.thresholds")
        _reject_unknown_keys(
            thresholds, {f.name for f in fields(HintThresholds)},
            f"{where}.thresholds",
        )
        kwargs["thresholds"] = HintThresholds(**thresholds)
    if "warmup_pools" in kwargs:
        kwargs["warmup_pools"] = tuple(str(p) for p in kwargs["warmup_pools"])
    try:
        return MntpConfig(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{where}: {exc}") from exc


def _hardening_to_dict(policy: HardeningPolicy) -> Dict[str, Any]:
    """Serialize a :class:`HardeningPolicy` field-for-field."""
    return {f.name: getattr(policy, f.name) for f in fields(HardeningPolicy)}


def _hardening_from_dict(data: Dict[str, Any], where: str) -> HardeningPolicy:
    """Rebuild a :class:`HardeningPolicy`; unknown keys raise."""
    data = _require_mapping(data, where)
    _reject_unknown_keys(
        data, {f.name for f in fields(HardeningPolicy)}, where
    )
    try:
        return HardeningPolicy(**data)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{where}: {exc}") from exc


#: Keys :meth:`FaultEpisode.to_dict` emits — enforced strictly here so
#: a typo'd episode key fails at load instead of silently defaulting.
_EPISODE_KEYS = frozenset(
    {"kind", "start", "duration", "target", "direction", "params"}
)


def _faults_from_dict(data: Dict[str, Any], where: str) -> FaultSchedule:
    """Rebuild a :class:`FaultSchedule` with strict key checking.

    ``FaultSchedule.from_dict`` tolerates missing keys for backward
    compatibility; spec files are new, so they get the strict treatment
    the rest of the schema has.
    """
    data = _require_mapping(data, where)
    _reject_unknown_keys(data, {"name", "episodes"}, where)
    episodes_data = data.get("episodes", [])
    if not isinstance(episodes_data, list):
        raise ValueError(f"{where}.episodes must be a list")
    episodes = []
    for index, episode in enumerate(episodes_data):
        episode_where = f"{where}.episodes[{index}]"
        episode = _require_mapping(episode, episode_where)
        _reject_unknown_keys(episode, _EPISODE_KEYS, episode_where)
        try:
            episodes.append(FaultEpisode.from_dict(episode))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"{episode_where}: {exc}") from exc
    return FaultSchedule(episodes=episodes, name=str(data.get("name",
                                                              "schedule")))


def _slo_from_dict(data: Dict[str, Any], where: str) -> SloSpec:
    """Rebuild an embedded :class:`SloSpec`, prefixing errors with the
    spec path so "unknown SloSpec fields" names the guarantee block it
    came from."""
    data = _require_mapping(data, where)
    try:
        return SloSpec.from_dict(data)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{where}: {exc}") from exc


# -- topology --------------------------------------------------------------


@dataclass(frozen=True)
class TopologySpec:
    """Environment switches of a scenario, in spec-file form.

    A declarative subset of :class:`~repro.testbed.nodes.TestbedOptions`
    covering everything the named scenarios vary; process-model
    parameter blocks (channel, effects, cross-traffic, monitor) keep
    their defaults — a future schema revision can add them as nested
    blocks when a scenario needs to vary them.

    Attributes:
        wireless: Wireless last hop (False = wired ethernet).
        ntp_correction: Run ntpd on the TN to discipline its clock.
        monitor_active: Run the MN degradation loop (wireless only).
        pool_size: Member servers per pool hostname.
        include_falseticker: One biased member per pool (exercises
            MNTP's warm-up rejection).
        initial_clock_offset_s: TN clock offset at boot (seconds).
        wired_base_delay_s: Mean one-way propagation to pool servers.
        temperature: Optional ambient profile for the TN oscillator.
    """

    wireless: bool = True
    ntp_correction: bool = True
    monitor_active: bool = True
    pool_size: int = 4
    include_falseticker: bool = False
    initial_clock_offset_s: float = 0.0
    wired_base_delay_s: float = 0.025
    temperature: Optional[TemperatureProfile] = None

    def __post_init__(self) -> None:
        """Validate the structural fields."""
        if self.pool_size < 1:
            raise ValueError("topology.pool_size must be >= 1")
        if self.wired_base_delay_s <= 0:
            raise ValueError("topology.wired_base_delay_s must be positive")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready field mapping (declaration order)."""
        out: Dict[str, Any] = {
            "wireless": self.wireless,
            "ntp_correction": self.ntp_correction,
            "monitor_active": self.monitor_active,
            "pool_size": self.pool_size,
            "include_falseticker": self.include_falseticker,
            "initial_clock_offset_s": self.initial_clock_offset_s,
            "wired_base_delay_s": self.wired_base_delay_s,
            "temperature": (
                None if self.temperature is None
                else _temperature_to_dict(self.temperature)
            ),
        }
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any],
                  where: str = "topology") -> "TopologySpec":
        """Rebuild a topology block; unknown keys raise."""
        data = _require_mapping(data, where)
        known = {
            "wireless", "ntp_correction", "monitor_active", "pool_size",
            "include_falseticker", "initial_clock_offset_s",
            "wired_base_delay_s", "temperature",
        }
        _reject_unknown_keys(data, known, where)
        kwargs = dict(data)
        temperature = kwargs.pop("temperature", None)
        if temperature is not None:
            temperature = _temperature_from_dict(
                temperature, f"{where}.temperature"
            )
        try:
            return cls(temperature=temperature, **kwargs)
        except TypeError as exc:
            raise ValueError(f"{where}: {exc}") from exc


# -- the spec itself -------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """One experiment condition with its pass/fail guarantees, as data.

    Attributes:
        name: Spec identifier (also the telemetry shard id in matrix
            runs); must be a valid filename stem.
        description: What condition the spec reproduces.
        duration_s: Virtual seconds to simulate.
        cadence_s: SNTP request cadence in seconds.
        run_sntp: Whether the unmodified SNTP client also runs.
        topology: Environment switches (:class:`TopologySpec`).
        mntp: MNTP configuration, or None for SNTP-only runs.
        hardening: Optional robustness policy for the MNTP app's SNTP
            client.
        faults: Optional fault episodes to inject; None runs benign.
        guarantees: Success-tier :class:`SloSpec`; the run's streaming
            health verdict against it decides ``success``.
        minimal_guarantees: Optional Minimal-tier :class:`SloSpec`;
            judged by replay when the Success tier is violated, and
            deciding ``minimal`` vs the hard-fail ``failed``.
        tags: Free-form labels; the matrix CLI's ``--smoke`` selects
            specs tagged ``"smoke"``.
    """

    name: str
    description: str = ""
    duration_s: float = 3600.0
    cadence_s: float = 5.0
    run_sntp: bool = True
    topology: TopologySpec = field(default_factory=TopologySpec)
    mntp: Optional[MntpConfig] = None
    hardening: Optional[HardeningPolicy] = None
    faults: Optional[FaultSchedule] = None
    guarantees: SloSpec = field(default_factory=SloSpec)
    minimal_guarantees: Optional[SloSpec] = None
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        """Validate identity, timing, and tag fields."""
        if not self.name or any(c in self.name for c in "/\\ \t\n"):
            raise ValueError(
                f"spec name must be a non-empty filename stem without "
                f"separators or whitespace, got {self.name!r}"
            )
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.cadence_s <= 0:
            raise ValueError("cadence_s must be positive")
        if not all(isinstance(tag, str) and tag for tag in self.tags):
            raise ValueError("tags must be non-empty strings")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready document (stable key set, format-tagged)."""
        return {
            "format": SPEC_FORMAT,
            "name": self.name,
            "description": self.description,
            "duration_s": self.duration_s,
            "cadence_s": self.cadence_s,
            "run_sntp": self.run_sntp,
            "topology": self.topology.to_dict(),
            "mntp": None if self.mntp is None else _mntp_to_dict(self.mntp),
            "hardening": (
                None if self.hardening is None
                else _hardening_to_dict(self.hardening)
            ),
            "faults": None if self.faults is None else self.faults.to_dict(),
            "guarantees": self.guarantees.to_dict(),
            "minimal_guarantees": (
                None if self.minimal_guarantees is None
                else self.minimal_guarantees.to_dict()
            ),
            "tags": list(self.tags),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec; wrong format tag or unknown keys raise."""
        data = _require_mapping(data, "spec")
        fmt = data.get("format")
        if fmt != SPEC_FORMAT:
            raise ValueError(
                f"spec.format must be {SPEC_FORMAT!r}, got {fmt!r}"
            )
        known = {
            "format", "name", "description", "duration_s", "cadence_s",
            "run_sntp", "topology", "mntp", "hardening", "faults",
            "guarantees", "minimal_guarantees", "tags",
        }
        _reject_unknown_keys(data, known, "spec")
        kwargs: Dict[str, Any] = {
            key: data[key]
            for key in ("name", "description", "duration_s", "cadence_s",
                        "run_sntp")
            if key in data
        }
        if "topology" in data:
            kwargs["topology"] = TopologySpec.from_dict(
                data["topology"], "spec.topology"
            )
        if data.get("mntp") is not None:
            kwargs["mntp"] = _mntp_from_dict(data["mntp"], "spec.mntp")
        if data.get("hardening") is not None:
            kwargs["hardening"] = _hardening_from_dict(
                data["hardening"], "spec.hardening"
            )
        if data.get("faults") is not None:
            kwargs["faults"] = _faults_from_dict(data["faults"],
                                                 "spec.faults")
        if "guarantees" in data:
            kwargs["guarantees"] = _slo_from_dict(
                data["guarantees"], "spec.guarantees"
            )
        if data.get("minimal_guarantees") is not None:
            kwargs["minimal_guarantees"] = _slo_from_dict(
                data["minimal_guarantees"], "spec.minimal_guarantees"
            )
        if "tags" in data:
            tags = data["tags"]
            if not isinstance(tags, list):
                raise ValueError("spec.tags must be a list of strings")
            kwargs["tags"] = tuple(str(tag) for tag in tags)
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ValueError(f"spec: {exc}") from exc

    def to_json(self) -> str:
        """Canonical JSON encoding (sorted keys, trailing newline)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse :meth:`to_json` output (strict, like :meth:`from_dict`)."""
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ValueError(f"spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def build_options(self) -> TestbedOptions:
        """The :class:`TestbedOptions` this spec describes."""
        topology = self.topology
        return TestbedOptions(
            wireless=topology.wireless,
            ntp_correction=topology.ntp_correction,
            monitor_active=topology.monitor_active,
            pool_size=topology.pool_size,
            include_falseticker=topology.include_falseticker,
            initial_clock_offset=topology.initial_clock_offset_s,
            temperature=topology.temperature,
            wired_base_delay=topology.wired_base_delay_s,
            fault_schedule=self.faults,
            mntp_hardening=self.hardening,
        )

    def build_runner(
        self,
        seed: int = 0,
        sample_rate: Optional[int] = None,
        ring_capacity: Optional[int] = None,
        on_health: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> ExperimentRunner:
        """An :class:`ExperimentRunner` for this spec, health-monitored
        against the Success-tier guarantees."""
        return ExperimentRunner(
            seed=seed,
            options=self.build_options(),
            duration=self.duration_s,
            sntp_cadence=self.cadence_s,
            run_sntp=self.run_sntp,
            mntp_config=self.mntp,
            sample_rate=sample_rate,
            ring_capacity=ring_capacity,
            health_spec=self.guarantees,
            on_health=on_health,
        )


# -- persistence -----------------------------------------------------------


def save_spec(spec: ScenarioSpec, path: str) -> None:
    """Write one spec as canonical JSON."""
    with open(path, "w") as f:
        f.write(spec.to_json())


def load_spec(path: str) -> ScenarioSpec:
    """Load one spec file; errors are prefixed with the path."""
    try:
        with open(path) as f:
            text = f.read()
    except OSError as exc:
        raise ValueError(f"{path}: {exc}") from exc
    try:
        return ScenarioSpec.from_json(text)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc


def iter_spec_files(directory: str) -> List[str]:
    """The ``.json`` files of a spec directory, sorted by filename."""
    try:
        names = sorted(os.listdir(directory))
    except OSError as exc:
        raise ValueError(f"{directory}: {exc}") from exc
    return [
        os.path.join(directory, name)
        for name in names
        if name.endswith(".json")
    ]


def load_spec_dir(directory: str) -> List[ScenarioSpec]:
    """Load every spec in a directory (strict: first bad file raises).

    The fault-tolerant per-file treatment lives in the matrix runner;
    this loader is for callers that want all-or-nothing semantics.
    """
    specs = [load_spec(path) for path in iter_spec_files(directory)]
    seen: Dict[str, str] = {}
    for path, spec in zip(iter_spec_files(directory), specs):
        if spec.name in seen:
            raise ValueError(
                f"{path}: duplicate spec name {spec.name!r} "
                f"(also defined by {seen[spec.name]})"
            )
        seen[spec.name] = path
    return specs


# -- execution + judging ---------------------------------------------------


def judge_result(
    spec: ScenarioSpec, result: ExperimentResult
) -> Dict[str, Any]:
    """Success/Minimal-tier judgement of one executed spec.

    Returns a dict with ``status`` (one of
    :data:`JUDGEMENT_STATUSES`), the Success-tier ``guarantees`` health
    report, and — when the Minimal tier was consulted — its
    ``minimal_guarantees`` report (None otherwise).
    """
    guarantees = result.health
    if guarantees is None:
        raise ValueError(
            "result carries no health verdict; run it through "
            "ScenarioSpec.build_runner so the monitor is attached"
        )
    minimal: Optional[Dict[str, Any]] = None
    if guarantees["verdict"] != "violated":
        status = "success"
    elif spec.minimal_guarantees is not None and result.telemetry is not None:
        monitor: HealthMonitor = replay_health(
            result.telemetry,
            samples=result.offset_samples(),
            spec=spec.minimal_guarantees,
        )
        minimal = monitor.report()
        status = "minimal" if minimal["verdict"] != "violated" else "failed"
    else:
        status = "failed"
    return {
        "status": status,
        "guarantees": guarantees,
        "minimal_guarantees": minimal,
    }


def run_spec(
    spec: ScenarioSpec,
    seed: int = 0,
    sample_rate: Optional[int] = None,
    ring_capacity: Optional[int] = None,
) -> Tuple[ExperimentResult, Dict[str, Any]]:
    """Run one spec and judge it; returns (result, judgement)."""
    result = spec.build_runner(
        seed=seed, sample_rate=sample_rate, ring_capacity=ring_capacity
    ).run()
    return result, judge_result(spec, result)


# -- the shipped spec set --------------------------------------------------

#: Success-tier guarantees attached to generated named-scenario specs;
#: scenarios not listed get the default :class:`SloSpec` envelope.
#: ``chaos_smoke`` keeps the exact spec the ``health --smoke`` CI gate
#: judges with, so the spec file reproduces today's verdict.
_NAMED_GUARANTEES: Dict[str, Callable[[], SloSpec]] = {
    "chaos_smoke": smoke_spec,
}

#: Names tagged into the CI smoke tier (fast, verdict-stable specs the
#: ``matrix --smoke`` gate runs on every check).
_SMOKE_NAMES = frozenset({"chaos_smoke", "wired_corrected"})


def _chaos_guarantees() -> SloSpec:
    """Success-tier envelope of the full chaos matrix.

    The 12 episodes are spaced at most 240 s apart, so a fault grace of
    240 s keeps the whole hostile stretch inside fault windows — any
    violation *outside* them is a real robustness regression, exactly
    like the smoke gate's rule.
    """
    return SloSpec.from_dict({
        **smoke_spec().to_dict(), "fault_grace_s": 240.0,
    })


def _chaos_minimal_guarantees() -> SloSpec:
    """Minimal-tier envelope of the full chaos matrix: MNTP may degrade
    under fire but must never starve or lose the plot entirely."""
    base = _chaos_guarantees().to_dict()
    base.update({
        "p99_abs_error_warn_ms": 200.0,
        "p99_abs_error_violate_ms": 1000.0,
        "drop_rate_warn_ratio": 0.5,
        "drop_rate_violate_ratio": 0.9,
        "starvation_warn_s": 600.0,
        "starvation_violate_s": 1200.0,
    })
    return SloSpec.from_dict(base)


def spec_for_scenario(name: str) -> ScenarioSpec:
    """The :class:`ScenarioSpec` form of a named scenario.

    Raises:
        KeyError: Unknown scenario name.
        ValueError: The scenario uses options the spec schema cannot
            yet express (non-default process-model parameter blocks).
    """
    scenario = SCENARIOS[name]
    options = scenario.options_factory()
    reference = TestbedOptions()
    for unsupported in ("channel_params", "effects_params",
                        "cross_traffic_params", "monitor_params",
                        "suspend_node"):
        if getattr(options, unsupported) != getattr(reference, unsupported):
            raise ValueError(
                f"scenario {name!r} varies TestbedOptions.{unsupported}, "
                "which the spec schema does not express yet"
            )
    topology = TopologySpec(
        wireless=options.wireless,
        ntp_correction=options.ntp_correction,
        monitor_active=options.monitor_active,
        pool_size=options.pool_size,
        include_falseticker=options.include_falseticker,
        initial_clock_offset_s=options.initial_clock_offset,
        wired_base_delay_s=options.wired_base_delay,
        temperature=options.temperature,
    )
    guarantees_factory = _NAMED_GUARANTEES.get(name, SloSpec)
    return ScenarioSpec(
        name=name,
        description=scenario.description,
        duration_s=scenario.duration,
        cadence_s=scenario.cadence,
        run_sntp=scenario.run_sntp,
        topology=topology,
        mntp=(
            scenario.mntp_config_factory()
            if scenario.mntp_config_factory is not None
            else None
        ),
        hardening=options.mntp_hardening,
        faults=options.fault_schedule,
        guarantees=guarantees_factory(),
        tags=("smoke",) if name in _SMOKE_NAMES else (),
    )


def chaos_matrix_spec() -> ScenarioSpec:
    """The full 12-episode chaos matrix as a declarative spec.

    Same setup as ``repro-mntp chaos`` without ``--smoke``: wired
    topology, free-running clock, hardened chaos MNTP config, every
    fault kind once.  Success tier mirrors the smoke gate's rule with a
    grace wide enough to bridge the episode spacing; the Minimal tier
    demonstrates the two-tier judgement on the nastiest shipped spec.
    """
    return ScenarioSpec(
        name="chaos_full",
        description="Full fault matrix (every FaultKind once) against "
        "the hardened MNTP client on the wired topology — the spec-file "
        "form of 'repro-mntp chaos'",
        duration_s=4200.0,
        cadence_s=5.0,
        topology=TopologySpec(
            wireless=False, ntp_correction=False, monitor_active=False
        ),
        mntp=chaos_mntp_config(),
        hardening=HardeningPolicy(),
        faults=default_fault_matrix(smoke=False),
        guarantees=_chaos_guarantees(),
        minimal_guarantees=_chaos_minimal_guarantees(),
        tags=("chaos",),
    )


def default_specs() -> List[ScenarioSpec]:
    """Every shipped spec: the named scenarios plus the full chaos
    matrix, sorted by name."""
    specs = [spec_for_scenario(name) for name in SCENARIOS]
    specs.append(chaos_matrix_spec())
    return sorted(specs, key=lambda spec: spec.name)


def write_default_specs(directory: str) -> List[str]:
    """Write the shipped spec set as ``<name>.json`` files; returns the
    written paths (regenerates the repo's ``scenarios/`` directory)."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for spec in default_specs():
        path = os.path.join(directory, f"{spec.name}.json")
        save_spec(spec, path)
        paths.append(path)
    return paths

"""Channel/testbed calibration checks.

DESIGN.md calibrates the wireless substrate to the paper's Figure-4
statistics.  This module re-derives those statistics from fresh runs
and scores them against the published targets, so anyone adjusting
channel parameters can see at a glance what they broke.  Used by the
``repro-mntp calibrate`` CLI command and by the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.testbed.scenarios import run_scenario


@dataclass(frozen=True)
class CalibrationTarget:
    """One published statistic with an acceptance band.

    Attributes:
        name: Target identifier.
        paper_value: The published number (seconds).
        low / high: Acceptance band for the measured value (seconds) —
            generous, because the shape is the goal, not the digits.
    """

    name: str
    paper_value: float
    low: float
    high: float

    def check(self, measured: float) -> bool:
        """Whether the measured value falls in the acceptance band."""
        return self.low <= measured <= self.high


#: Figure-4 calibration targets (seconds).
TARGETS: List[CalibrationTarget] = [
    CalibrationTarget("wired_corrected_mean", 0.004, 0.0005, 0.015),
    CalibrationTarget("wired_corrected_std", 0.007, 0.0005, 0.020),
    CalibrationTarget("wireless_corrected_mean", 0.031, 0.010, 0.090),
    CalibrationTarget("wireless_corrected_std", 0.047, 0.015, 0.200),
    CalibrationTarget("wireless_corrected_max", 0.600, 0.200, 1.600),
    CalibrationTarget("wireless_uncorrected_mean", 0.118, 0.020, 0.250),
]


@dataclass
class CalibrationReport:
    """Measured values and verdicts for all targets."""

    measured: Dict[str, float]
    verdicts: Dict[str, bool]

    @property
    def ok(self) -> bool:
        """Whether every target is inside its band."""
        return all(self.verdicts.values())

    def rows(self) -> List[List[str]]:
        """Table rows: target, paper, measured, band, verdict."""
        out = []
        for target in TARGETS:
            measured = self.measured[target.name]
            out.append([
                target.name,
                f"{target.paper_value * 1000:.0f}",
                f"{measured * 1000:.1f}",
                f"{target.low * 1000:.0f}-{target.high * 1000:.0f}",
                "ok" if self.verdicts[target.name] else "OUT",
            ])
        return out


def run_calibration(seed: int = 1) -> CalibrationReport:
    """Run the Figure-4 conditions and score them against the targets."""
    wired = run_scenario("wired_corrected", seed=seed).sntp_stats()
    wifi_c = run_scenario("wireless_corrected", seed=seed).sntp_stats()
    wifi_u = run_scenario("wireless_uncorrected", seed=seed).sntp_stats()
    measured = {
        "wired_corrected_mean": wired.mean_abs,
        "wired_corrected_std": wired.std_abs,
        "wireless_corrected_mean": wifi_c.mean_abs,
        "wireless_corrected_std": wifi_c.std_abs,
        "wireless_corrected_max": wifi_c.max_abs,
        "wireless_uncorrected_mean": wifi_u.mean_abs,
    }
    verdicts = {t.name: t.check(measured[t.name]) for t in TARGETS}
    return CalibrationReport(measured=measured, verdicts=verdicts)

"""Testbed topology: WAP + target node + monitor node + pool servers.

Builds the full §3.2 environment in one object:

* four simulated NTP pools (``0/1/2/3.pool.ntp.org``) plus the TN's
  OS-default reference (``time.apple.com``), each pool holding several
  member servers with near-true clocks and wired-Internet paths;
* the TN's laptop-grade drifting clock, with separate SNTP "sockets"
  for the SNTP app, the MNTP app, and the optional ntpd daemon;
* in wireless mode, a :class:`~repro.wireless.channel.WirelessChannel`
  whose per-packet effects apply to *all* TN traffic in both
  directions, plus the MN's cross-traffic and control loop;
* in wired mode, no channel — hints are pinned favorable and packets
  see only the wired path models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.clock.discipline_api import ClockCorrector, SlewLimits
from repro.clock.oscillator import OSCILLATOR_GRADES, Oscillator
from repro.clock.simclock import SimClock
from repro.clock.temperature import ConstantTemperature, TemperatureProfile
from repro.faults.injectors import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.net.link import Link
from repro.net.message import Datagram
from repro.net.path import PathModel
from repro.ntp.discipline import ClockDiscipline
from repro.ntp.pool import PoolDns
from repro.ntp.server import NtpServer, ServerConfig, ServerPersona
from repro.ntp.sntp_client import HardeningPolicy, SntpClient
from repro.simcore.simulator import Simulator
from repro.testbed.monitor import MonitorNode, MonitorParams
from repro.testbed.pingtool import PingTool
from repro.wireless.channel import ChannelParams, WirelessChannel
from repro.wireless.crosstraffic import CrossTrafficGenerator, CrossTrafficParams
from repro.wireless.effects import ChannelEffects, EffectsParams
from repro.wireless.hints import ALWAYS_FAVORABLE, StaticHintProvider
from repro.wireless.wap import AccessPoint


@dataclass
class TestbedOptions:
    """Experiment environment switches.

    (``__test__ = False`` tells pytest this is not a test class despite
    the name.)

    Attributes:
        wireless: Wireless last hop (False = wired ethernet).
        ntp_correction: Run ntpd on the TN to discipline its clock.
        monitor_active: Run the MN degradation loop (wireless only).
        pool_size: Member servers per pool hostname.
        include_falseticker: Make one member of each pool a falseticker
            (exercises MNTP's warm-up rejection).
        initial_clock_offset: TN clock offset at boot (seconds).
        temperature: Ambient profile for the TN oscillator.
        wired_base_delay: Mean one-way propagation to pool servers.
        channel_params: Wireless channel process parameters.
        effects_params: Channel-to-packet mapping parameters.
        cross_traffic_params: MN download workload shape.
        monitor_params: MN control-loop tunables.
        fault_schedule: Optional fault episodes to inject (see
            :mod:`repro.faults`); None runs benign.
        mntp_hardening: Optional robustness policy for the MNTP app's
            SNTP client (backoff/failover/health); the baseline SNTP
            app always stays plain so chaos runs compare the two.
        suspend_node: Node label matched against SUSPEND episodes; the
            TN is the only suspendable node in this topology.
    """

    __test__ = False

    wireless: bool = True
    ntp_correction: bool = True
    monitor_active: bool = True
    pool_size: int = 4
    include_falseticker: bool = False
    initial_clock_offset: float = 0.0
    temperature: Optional[TemperatureProfile] = None
    wired_base_delay: float = 0.025
    channel_params: ChannelParams = field(default_factory=ChannelParams)
    effects_params: EffectsParams = field(default_factory=EffectsParams)
    cross_traffic_params: CrossTrafficParams = field(default_factory=CrossTrafficParams)
    monitor_params: MonitorParams = field(default_factory=MonitorParams)
    fault_schedule: Optional[FaultSchedule] = None
    mntp_hardening: Optional[HardeningPolicy] = None
    suspend_node: str = "tn"


POOL_NAMES = ("0.pool.ntp.org", "1.pool.ntp.org", "2.pool.ntp.org", "3.pool.ntp.org")
OS_REFERENCE = "time.apple.com"


class Testbed:
    """Fully wired simulation environment for one experiment run."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, sim: Simulator, options: TestbedOptions = TestbedOptions()) -> None:
        self.sim = sim
        self.options = options
        self.dns = PoolDns(sim.rng.stream("pooldns"))
        self._client_receivers: Dict[str, Callable[[Datagram], None]] = {}
        self._forward_links: Dict[str, Link] = {}
        # Fault injector, armed after the servers exist (below).
        self.injector: Optional[FaultInjector] = None
        if options.fault_schedule is not None:
            self.injector = FaultInjector(sim, options.fault_schedule)

        # -- wireless hop ----------------------------------------------------
        if options.wireless:
            self.channel: Optional[WirelessChannel] = WirelessChannel(
                params=options.channel_params,
                rng=sim.rng.stream("channel"),
                now_fn=lambda: sim.now,
                telemetry=sim.telemetry,
            )
            self.cross_traffic: Optional[CrossTrafficGenerator] = CrossTrafficGenerator(
                sim, params=options.cross_traffic_params
            )
            self.effects: Optional[ChannelEffects] = ChannelEffects(
                channel=self.channel,
                rng=sim.rng.stream("effects"),
                cross_traffic=self.cross_traffic,
                params=options.effects_params,
            )
            self.wap: Optional[AccessPoint] = AccessPoint(self.channel)
            # Co-channel cross-traffic lifts the measured noise floor,
            # so the MNTP gate can see download bursts too.
            self.channel.occupancy_fn = self.cross_traffic.occupancy
            self.hints = self.channel
        else:
            self.channel = None
            self.cross_traffic = None
            self.effects = None
            self.wap = None
            self.hints = StaticHintProvider(ALWAYS_FAVORABLE)

        # -- servers ------------------------------------------------------------
        self.servers: Dict[str, NtpServer] = {}
        for pool in POOL_NAMES + (OS_REFERENCE,):
            members = [
                self._make_server(pool, i, options) for i in range(options.pool_size)
            ]
            self.dns.register(pool, members)
        if self.injector is not None:
            self.injector.install(self.servers)

        # -- target node -----------------------------------------------------------
        self.tn_clock = SimClock(
            oscillator=Oscillator(OSCILLATOR_GRADES["laptop"], sim.rng.stream("tn-osc")),
            now_fn=lambda: sim.now,
            temperature=options.temperature or ConstantTemperature(),
            initial_offset=options.initial_clock_offset,
        )
        self.sntp_app = self._make_client("tn-sntp")
        self.mntp_app = self._make_client("tn-mntp", hardening=options.mntp_hardening)
        if options.mntp_hardening is not None:
            self.mntp_app.set_failover_peers(list(POOL_NAMES))

        self.ntpd: Optional[ClockDiscipline] = None
        if options.ntp_correction:
            ntpd_client = self._make_client("tn-ntpd")
            corrector = ClockCorrector(self.tn_clock, SlewLimits())
            # ntpd polls four members of the OS reference pool directly
            # (fixed associations, as a real daemon config would).
            upstream = [s.config.name for s in self.dns.members(OS_REFERENCE)]
            self.ntpd = ClockDiscipline(sim, ntpd_client, corrector, upstream)

        # -- monitor node -------------------------------------------------------------
        self.ping = PingTool(sim, probe_fn=self._ping_probe)
        self.monitor: Optional[MonitorNode] = None
        if options.wireless and options.monitor_active:
            assert self.wap is not None and self.cross_traffic is not None
            self.monitor = MonitorNode(
                sim, self.wap, self.cross_traffic, self.ping, options.monitor_params
            )

    # -- construction helpers ---------------------------------------------------

    def _make_server(self, pool: str, index: int, options: TestbedOptions) -> NtpServer:
        sim = self.sim
        name = f"{pool}#{index}"
        stratum = 1 if index == 0 else 2
        persona = ServerPersona.TRUECHIMER
        falseticker_bias = 0.250
        if options.include_falseticker and index == options.pool_size - 1:
            persona = ServerPersona.FALSETICKER
            falseticker_bias = float(
                sim.rng.stream(f"bias:{name}").uniform(0.15, 0.45)
            )
        grade = OSCILLATOR_GRADES["reference" if stratum == 1 else "server"]
        clock = SimClock(
            oscillator=Oscillator(grade, sim.rng.stream(f"osc:{name}")),
            now_fn=lambda: sim.now,
            initial_offset=float(
                sim.rng.stream(f"init:{name}").normal(0.0, 0.0002 * stratum)
            ),
        )
        server = NtpServer(
            sim,
            clock,
            ServerConfig(
                name=name,
                stratum=stratum,
                persona=persona,
                falseticker_bias=falseticker_bias,
            ),
        )
        # Wired internet path to/from this server; the wireless hop's
        # effects are layered on via the link hooks when enabled.
        rng = sim.rng.stream(f"path:{name}")
        base = float(rng.uniform(0.6, 1.4)) * self.options.wired_base_delay
        asym = float(rng.uniform(0.9, 1.1))
        fwd_path = PathModel(rng, base_delay=base * asym, queue_mean=0.002,
                             loss_rate=0.001)
        rev_path = PathModel(rng, base_delay=base * (2.0 - asym), queue_mean=0.002,
                             loss_rate=0.001)
        hook = self.effects.as_hook() if self.effects else None
        fwd_hook, rev_hook = hook, hook
        if self.injector is not None:
            fwd_hook = self.injector.wrap_hook(hook, "up", name)
            rev_hook = self.injector.wrap_hook(hook, "down", name)
        fwd = Link(sim, fwd_path, receive=server.on_datagram, effect_hook=fwd_hook,
                   name=f"up:{name}")
        rev = Link(sim, rev_path, receive=self._deliver_to_client, effect_hook=rev_hook,
                   name=f"down:{name}")
        server.send_reply = rev.send
        self._forward_links[name] = fwd
        self.servers[name] = server
        return server

    def _make_client(
        self, name: str, hardening: Optional[HardeningPolicy] = None
    ) -> SntpClient:
        client = SntpClient(
            sim=self.sim,
            clock=self.tn_clock,
            send=self._send_from_tn,
            name=name,
            hardening=hardening,
        )
        self._client_receivers[name] = client.on_datagram
        return client

    # -- datagram routing ------------------------------------------------------------

    def _tn_suspended(self) -> bool:
        """Whether a suspend fault currently freezes the target node.

        The device-suspend fault is modelled as the radio being off:
        while active, all TN traffic in both directions is dropped at
        the node boundary (approximating the frozen event sources of a
        truly suspended device).
        """
        return self.injector is not None and self.injector.node_suspended(
            self.options.suspend_node
        )

    def _send_from_tn(self, datagram: Datagram) -> None:
        if self._tn_suspended():
            datagram.dropped = True
            assert self.injector is not None
            self.injector.record_suspend_drop(
                self.options.suspend_node, datagram.trace_id, datagram.ident
            )
            return
        server = self.dns.resolve(datagram.dst)
        datagram.dst = server.config.name
        self._forward_links[server.config.name].send(datagram)

    def _deliver_to_client(self, datagram: Datagram) -> None:
        if self._tn_suspended():
            datagram.dropped = True
            assert self.injector is not None
            self.injector.record_suspend_drop(
                self.options.suspend_node, datagram.trace_id, datagram.ident
            )
            return
        receiver = self._client_receivers.get(datagram.dst)
        if receiver is not None:
            receiver(datagram)

    # -- ping -------------------------------------------------------------------------

    def _ping_probe(self, on_result: Callable[[Optional[float]], None]) -> None:
        """One ICMP-like probe to the probe destination across the same
        wireless + wired hops as the NTP traffic."""
        rng = self.sim.rng.stream("ping-path")
        base_rtt = 2 * self.options.wired_base_delay
        rtt = base_rtt + float(rng.exponential(0.004))
        if self.effects is not None:
            out = self.effects.sample()
            back = self.effects.sample()
            if out.lost or back.lost:
                self.sim.call_after(1.0, lambda: on_result(None), label="ping:lost")
                return
            rtt += out.extra_delay + back.extra_delay
        self.sim.call_after(rtt, lambda: on_result(rtt), label="ping:echo")

    # -- lifecycle ----------------------------------------------------------------------

    def start_background(self) -> None:
        """Start ntpd (if configured) and the MN loop (if configured)."""
        if self.ntpd is not None:
            self.ntpd.start()
        if self.monitor is not None:
            self.monitor.start()
        elif self.options.wireless and self.cross_traffic is not None:
            # Without the MN loop, cross-traffic still runs open-loop so
            # the channel is not artificially clean.
            self.cross_traffic.start()
            self.ping.start()

    def stop_background(self) -> None:
        """Stop all background daemons."""
        if self.ntpd is not None:
            self.ntpd.stop()
        if self.monitor is not None:
            self.monitor.stop()
        elif self.cross_traffic is not None:
            self.cross_traffic.stop()
            self.ping.stop()

    def all_pool_members(self) -> List[NtpServer]:
        """Every constructed server."""
        return list(self.servers.values())

"""Experiment runner: SNTP and/or MNTP on one testbed instance.

Reproduces the measurement procedure of §3.2 / §5: the SNTP client
emits a request on a fixed cadence (5 s in the paper) to
``0.pool.ntp.org`` and records the reported offset; MNTP runs alongside
on the same clock and records its reports; the TN's ground-truth offset
is sampled on the same cadence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.clock.discipline_api import ClockCorrector
from repro.core.config import MntpConfig
from repro.core.protocol import Mntp, MntpReport
from repro.ntp.sntp_client import SntpResult
from repro.simcore.simulator import Simulator
from repro.testbed.nodes import Testbed, TestbedOptions


@dataclass(frozen=True)
class OffsetPoint:
    """One time-stamped offset observation (seconds).

    Attributes:
        time: Virtual time of the observation.
        offset: Reported offset (server - local).
        truth: Ground-truth clock offset (local - true) at the same
            instant, when the runner captured it; NaN otherwise.
    """

    time: float
    offset: float
    truth: float = float("nan")

    @property
    def error(self) -> float:
        """Measurement error vs ground truth.

        A perfect report equals ``-truth`` (server clocks are ~true), so
        the error is ``offset + truth``; NaN if truth was not captured.
        """
        return self.offset + self.truth


@dataclass
class SeriesStats:
    """Summary statistics of an offset series (computed on |offset|).

    Attributes:
        count: Number of points.
        mean_abs / std_abs / max_abs: Statistics of absolute offsets.
        rmse: Root mean square of the offsets (vs an expected 0).
    """

    count: int
    mean_abs: float
    std_abs: float
    max_abs: float
    rmse: float

    @classmethod
    def of(cls, series: "List[OffsetPoint]", use_error: bool = False) -> "SeriesStats":
        """Summarise a series (zeros if empty).

        Args:
            series: Points to summarise.
            use_error: Summarise measurement errors vs ground truth
                instead of raw reported offsets (points lacking truth
                are skipped).
        """
        if use_error:
            vals = np.asarray(
                [p.error for p in series if p.truth == p.truth]
            )
        else:
            vals = np.asarray([p.offset for p in series])
        if vals.size == 0:
            return cls(count=0, mean_abs=0.0, std_abs=0.0, max_abs=0.0, rmse=0.0)
        abss = np.abs(vals)
        return cls(
            count=int(vals.size),
            mean_abs=float(abss.mean()),
            std_abs=float(abss.std()),
            max_abs=float(abss.max()),
            rmse=float(math.sqrt((vals**2).mean())),
        )


@dataclass
class ExperimentResult:
    """All series collected from one run.

    Attributes:
        sntp: Offsets reported by the unmodified SNTP client.
        sntp_failures: Count of SNTP queries with no usable response.
        mntp_reports: Every MNTP report (accepted and rejected).
        true_offsets: Ground-truth TN clock offsets on the cadence.
        duration: Virtual seconds simulated.
        telemetry: Frozen :meth:`repro.obs.Telemetry.snapshot` of the
            run (metrics + trace/span records); None for results built
            outside :class:`ExperimentRunner`.
        explain: Compact root-cause report embedded by persistence in
            archived runs (see :mod:`repro.obs.explain`); None on live
            results — call :func:`repro.obs.explain_run` on
            ``telemetry`` instead.
        health: The ``mntp-health-report-v1`` verdict of the run's
            :class:`repro.obs.health.HealthMonitor`; None when the run
            was not health-monitored.
    """

    sntp: List[OffsetPoint] = field(default_factory=list)
    sntp_failures: int = 0
    mntp_reports: List[MntpReport] = field(default_factory=list)
    true_offsets: List[OffsetPoint] = field(default_factory=list)
    duration: float = 0.0
    telemetry: Optional[Dict[str, Any]] = None
    explain: Optional[Dict[str, Any]] = None
    health: Optional[Dict[str, Any]] = None

    # -- derived series --------------------------------------------------

    def mntp_accepted(self) -> List[OffsetPoint]:
        """Accepted MNTP offsets as a series."""
        return [
            OffsetPoint(r.time, r.offset, self._truth_of(r))
            for r in self.mntp_reports
            if r.accepted
        ]

    def mntp_rejected(self) -> List[OffsetPoint]:
        """Filter-rejected MNTP offsets as a series."""
        return [
            OffsetPoint(r.time, r.offset, self._truth_of(r))
            for r in self.mntp_reports
            if not r.accepted
        ]

    def _truth_of(self, report: MntpReport) -> float:
        truth = getattr(report, "truth", None)
        return float("nan") if truth is None else truth

    def offset_samples(self) -> List[OffsetPoint]:
        """Every per-exchange offset observation with its ground truth.

        The SNTP series plus regular-phase MNTP reports — the samples
        that correspond one-to-one to a single SNTP exchange and can be
        joined to its causal tree by (time, offset).  Warm-up MNTP
        reports combine several pool exchanges and are excluded.
        """
        points = list(self.sntp)
        points.extend(
            OffsetPoint(r.time, r.offset, self._truth_of(r))
            for r in self.mntp_reports
            if r.phase.value == "regular"
        )
        return points

    def mntp_corrected_drift(self) -> List[OffsetPoint]:
        """The paper's 'clock corrected drift values': residuals of
        accepted offsets against the running trend line."""
        return [
            OffsetPoint(r.time, r.residual)
            for r in self.mntp_reports
            if r.accepted and r.residual is not None
        ]

    def sntp_stats(self) -> SeriesStats:
        """Summary of the SNTP series (raw reported offsets)."""
        return SeriesStats.of(self.sntp)

    def mntp_stats(self) -> SeriesStats:
        """Summary of the accepted-MNTP series (raw reported offsets)."""
        return SeriesStats.of(self.mntp_accepted())

    def sntp_error_stats(self) -> SeriesStats:
        """SNTP measurement errors vs ground truth."""
        return SeriesStats.of(self.sntp, use_error=True)

    def mntp_error_stats(self) -> SeriesStats:
        """Accepted-MNTP measurement errors vs ground truth."""
        return SeriesStats.of(self.mntp_accepted(), use_error=True)

    def improvement_factor(self) -> float:
        """Mean-|error| ratio SNTP/MNTP vs ground truth (the paper's
        '12 times better'); falls back to raw offsets if truth was not
        captured."""
        sntp = self.sntp_error_stats()
        mntp = self.mntp_error_stats()
        if sntp.count == 0 or mntp.count == 0:
            sntp, mntp = self.sntp_stats(), self.mntp_stats()
        if mntp.mean_abs == 0:
            return float("inf") if sntp.mean_abs > 0 else 1.0
        return sntp.mean_abs / mntp.mean_abs


class ExperimentRunner:
    """Configure and execute one experiment.

    Args:
        seed: Root seed for all randomness in the run.
        options: Testbed environment switches.
        duration: Virtual seconds to simulate.
        sntp_cadence: Seconds between SNTP requests (paper: 5 s).
        run_sntp: Whether to run the unmodified SNTP client.
        mntp_config: When given, run MNTP alongside with this config.
        sample_truth: Whether to sample ground-truth clock offsets.
        sample_rate: Keep roughly 1-in-N traced exchanges
            (:mod:`repro.obs.sampling`); ``None`` keeps all.
        ring_capacity: Telemetry ring-buffer slots; ``None`` uses the
            default (:data:`repro.obs.ringbuf.DEFAULT_RING_CAPACITY`).
        instrument: ``False`` runs with no-op telemetry (the bare leg
            of the obs-overhead gate).
        health_spec: When given, a streaming
            :class:`repro.obs.health.HealthMonitor` with these SLO
            thresholds watches the run and its ``mntp-health-report-v1``
            verdict lands on :attr:`ExperimentResult.health`.
        on_health: Optional callback invoked with every periodic health
            evaluation row (``run --watch`` prints these); implies
            monitoring with the default spec when ``health_spec`` is
            omitted.
    """

    def __init__(
        self,
        seed: int = 0,
        options: TestbedOptions = TestbedOptions(),
        duration: float = 3600.0,
        sntp_cadence: float = 5.0,
        run_sntp: bool = True,
        mntp_config: Optional[MntpConfig] = None,
        sample_truth: bool = True,
        sample_rate: Optional[int] = None,
        ring_capacity: Optional[int] = None,
        instrument: bool = True,
        health_spec: Optional[Any] = None,
        on_health: Optional[Any] = None,
    ) -> None:
        if duration <= 0:
            raise ValueError("duration must be positive")
        if sntp_cadence <= 0:
            raise ValueError("cadence must be positive")
        self.seed = seed
        self.options = options
        self.duration = duration
        self.sntp_cadence = sntp_cadence
        self.run_sntp = run_sntp
        self.mntp_config = mntp_config
        self.sample_truth = sample_truth
        self.sample_rate = sample_rate
        self.ring_capacity = ring_capacity
        self.instrument = instrument
        self.health_spec = health_spec
        self.on_health = on_health
        self.sim: Optional[Simulator] = None
        self.testbed: Optional[Testbed] = None
        self.mntp: Optional[Mntp] = None
        self.health_monitor: Optional[Any] = None

    def run(self) -> ExperimentResult:
        """Build the testbed, run the protocols, return the series."""
        sim = Simulator(
            seed=self.seed,
            ring_capacity=self.ring_capacity,
            sample_rate=self.sample_rate,
            instrument=self.instrument,
        )
        testbed = Testbed(sim, self.options)
        self.sim, self.testbed = sim, testbed
        result = ExperimentResult(duration=self.duration)

        monitor = self._start_health_monitor(sim)
        if self.run_sntp:
            self._start_sntp_loop(sim, testbed, result)
        if self.mntp_config is not None:
            corrector = ClockCorrector(testbed.tn_clock)

            def on_report(report: MntpReport) -> None:
                # Stamp ground truth at report time so error metrics are
                # exact rather than interpolated.
                report.truth = testbed.tn_clock.true_offset()
                result.mntp_reports.append(report)
                if monitor is not None and report.accepted:
                    monitor.observe_exchange(
                        sim.now, "tn-mntp", True,
                        offset_s=report.offset,
                        error_s=report.offset + report.truth,
                    )

            self.mntp = Mntp(
                sim=sim,
                client=testbed.mntp_app,
                hints=testbed.hints,
                corrector=corrector,
                config=self.mntp_config,
                on_report=on_report,
            )
            self.mntp.start()
        if self.sample_truth:
            self._start_truth_sampler(sim, testbed, result)

        testbed.start_background()
        sim.run_until(self.duration)
        testbed.stop_background()
        if self.mntp is not None:
            self.mntp.stop()
        if monitor is not None:
            # Final evaluation at the horizon (the recurring tick only
            # fires strictly inside the run), then freeze the verdict.
            monitor.evaluate(self.duration)
            result.health = monitor.report()
        # Close spans of work still in flight at the horizon (open
        # exchanges, link transits, interference episodes) so the causal
        # assembler sees every tree the run started.
        sim.telemetry.spans.end_all()
        result.telemetry = sim.telemetry.snapshot()
        return result

    # -- loops -----------------------------------------------------------------

    def _start_health_monitor(self, sim: Simulator):
        """Attach a streaming health monitor when the run asked for one."""
        if self.health_spec is None and self.on_health is None:
            return None
        from repro.obs.health import HealthMonitor

        monitor = HealthMonitor(
            spec=self.health_spec, telemetry=sim.telemetry
        )
        self.health_monitor = monitor
        sim.health = monitor  # fault injectors notify episode windows
        interval = monitor.spec.eval_interval_s
        on_health = self.on_health

        def tick() -> None:
            if sim.now >= self.duration:
                return
            row = monitor.evaluate(sim.now)
            if on_health is not None:
                on_health(row)
            sim.call_after(interval, tick, label="health:tick")

        sim.call_after(interval, tick, label="health:tick")
        return monitor

    def _start_sntp_loop(
        self, sim: Simulator, testbed: Testbed, result: ExperimentResult
    ) -> None:
        queries = sim.telemetry.metrics.counter(
            "sntp_queries_total", "SNTP requests issued by the baseline client"
        )
        failures = sim.telemetry.metrics.counter(
            "sntp_query_failures_total",
            "SNTP queries with no usable response (timeout or KoD)",
        )

        monitor = self.health_monitor

        def poll() -> None:
            if sim.now >= self.duration:
                return

            def on_result(res: SntpResult) -> None:
                if res.ok:
                    assert res.sample is not None
                    truth = testbed.tn_clock.true_offset()
                    result.sntp.append(
                        OffsetPoint(sim.now, res.sample.offset, truth)
                    )
                    if monitor is not None:
                        monitor.observe_exchange(
                            sim.now, "tn-sntp", True,
                            offset_s=res.sample.offset,
                            error_s=res.sample.offset + truth,
                        )
                else:
                    result.sntp_failures += 1
                    failures.inc()
                    if monitor is not None:
                        monitor.observe_exchange(sim.now, "tn-sntp", False)

            queries.inc()
            testbed.sntp_app.query("0.pool.ntp.org", on_result)
            sim.call_after(self.sntp_cadence, poll, label="sntp:poll")

        sim.call_after(0.0, poll, label="sntp:poll")

    def _start_truth_sampler(
        self, sim: Simulator, testbed: Testbed, result: ExperimentResult
    ) -> None:
        def sample() -> None:
            if sim.now >= self.duration:
                return
            result.true_offsets.append(
                OffsetPoint(sim.now, testbed.tn_clock.true_offset())
            )
            sim.call_after(self.sntp_cadence, sample, label="truth:sample")

        sim.call_after(0.0, sample, label="truth:sample")

"""Laboratory testbed simulation (§3.2 of the paper).

Recreates the three-node testbed: a programmable wireless access point
(WAP), a target node (TN) running the time-sync clients, and a monitor
node (MN) that degrades the channel via cross-traffic and tx-power
commands, closing the loop on ping statistics reported by the TN.
"""

from repro.testbed.nodes import Testbed, TestbedOptions
from repro.testbed.monitor import MonitorNode, MonitorParams
from repro.testbed.pingtool import PingTool, PingStats
from repro.testbed.experiment import ExperimentRunner, ExperimentResult, OffsetPoint
from repro.testbed.scenarios import (
    SCENARIOS,
    Scenario,
    run_scenario,
)
from repro.testbed.specs import (
    ScenarioSpec,
    TopologySpec,
    chaos_matrix_spec,
    default_specs,
    load_spec,
    load_spec_dir,
    run_spec,
    save_spec,
    spec_for_scenario,
    write_default_specs,
)
from repro.testbed.matrix import MatrixOptions, run_matrix
from repro.testbed.calibration import CalibrationReport, run_calibration
from repro.testbed.persistence import load_result, save_result

__all__ = [
    "Testbed",
    "TestbedOptions",
    "MonitorNode",
    "MonitorParams",
    "PingTool",
    "PingStats",
    "ExperimentRunner",
    "ExperimentResult",
    "OffsetPoint",
    "SCENARIOS",
    "Scenario",
    "run_scenario",
    "ScenarioSpec",
    "TopologySpec",
    "chaos_matrix_spec",
    "default_specs",
    "load_spec",
    "load_spec_dir",
    "run_spec",
    "save_spec",
    "spec_for_scenario",
    "write_default_specs",
    "MatrixOptions",
    "run_matrix",
    "CalibrationReport",
    "run_calibration",
    "load_result",
    "save_result",
]

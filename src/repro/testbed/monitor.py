"""The monitor node's channel-degradation feedback loop.

From the paper (§3.2): the MN occupies the WAP's uplink with file
downloads and sends tx-power commands to the WAP.  The loop closes on
ping statistics reported by the TN:

* probes degrading (losses / rising latency) → decrease download
  frequency and increase tx power (back off, let the channel recover);
* channel stable (no losses) → decrease tx power and increase download
  frequency, "making the channel conditions variable and lossy at
  random intervals".

The result is an oscillation between hostile and benign episodes — the
operating regime all wireless experiments run in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simcore.simulator import Simulator
from repro.testbed.pingtool import PingTool
from repro.wireless.crosstraffic import CrossTrafficGenerator
from repro.wireless.wap import AccessPoint


@dataclass
class MonitorParams:
    """Feedback-loop tunables.

    Attributes:
        control_interval: Seconds between control decisions.
        loss_backoff_threshold: Loss fraction above which the MN backs off.
        rtt_backoff_threshold: Mean RTT above which the MN backs off.
        freq_step: Multiplicative change applied to download frequency.
        min_freq_scale / max_freq_scale: Clamp on download frequency.
        pressure_benign / pressure_hostile: Interference pressure applied
            in the two regimes.
    """

    control_interval: float = 20.0
    loss_backoff_threshold: float = 0.15
    rtt_backoff_threshold: float = 0.200
    freq_step: float = 1.4
    min_freq_scale: float = 0.2
    max_freq_scale: float = 6.0
    pressure_benign: float = 0.6
    pressure_hostile: float = 3.0


class MonitorNode:
    """Closed-loop channel degradation controller.

    Args:
        sim: Simulation kernel.
        wap: Access point accepting tx-power commands.
        cross_traffic: Download generator under MN control.
        ping: TN-side probe statistics source.
        params: Loop tunables.
    """

    def __init__(
        self,
        sim: Simulator,
        wap: AccessPoint,
        cross_traffic: CrossTrafficGenerator,
        ping: PingTool,
        params: MonitorParams = MonitorParams(),
    ) -> None:
        self._sim = sim
        self.wap = wap
        self.cross_traffic = cross_traffic
        self.ping = ping
        self.params = params
        self._running = False
        self.backoffs = 0
        self.escalations = 0

    def start(self) -> None:
        """Begin cross-traffic and the control loop."""
        self._running = True
        self.cross_traffic.start()
        self.ping.start()
        self._sim.call_after(
            self.params.control_interval, self._control, label="mn:control"
        )

    def stop(self) -> None:
        """Halt the loop and cross-traffic."""
        self._running = False
        self.cross_traffic.stop()
        self.ping.stop()

    def _control(self) -> None:
        if not self._running:
            return
        stats = self.ping.stats()
        p = self.params
        degraded = (
            stats.loss_fraction > p.loss_backoff_threshold
            or stats.mean_rtt > p.rtt_backoff_threshold
        )
        if degraded:
            # Channel suffering: ease off so it can recover.
            self.backoffs += 1
            self.cross_traffic.set_frequency_scale(
                max(p.min_freq_scale, self.cross_traffic.frequency_scale / p.freq_step)
            )
            self.wap.increase_tx_power()
            self.wap.channel.set_interference_pressure(p.pressure_benign)
        else:
            # Channel stable: make it hostile again.
            self.escalations += 1
            self.cross_traffic.set_frequency_scale(
                min(p.max_freq_scale, self.cross_traffic.frequency_scale * p.freq_step)
            )
            self.wap.decrease_tx_power()
            self.wap.channel.set_interference_pressure(p.pressure_hostile)
        self._sim.trace.emit(
            self._sim.now,
            "monitor",
            "control",
            degraded=degraded,
            loss=stats.loss_fraction,
            mean_rtt=stats.mean_rtt,
            tx_power=self.wap.tx_power_dbm,
            freq_scale=self.cross_traffic.frequency_scale,
        )
        self._sim.call_after(
            self.params.control_interval, self._control, label="mn:control"
        )

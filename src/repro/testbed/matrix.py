"""Fault-tolerant matrix runner over a directory of scenario specs.

Executes every :class:`~repro.testbed.specs.ScenarioSpec` JSON file in
a directory, each in its own worker process, and aggregates the
per-spec Success/Minimal-tier judgements into one deterministic
``mntp-matrix-report-v1`` document.

The runner is built to survive hostile specs — attack-style scenarios
deliberately starve clients, and a worker that dies or hangs must cost
exactly one spec, never the matrix:

* **Isolation** — one ``multiprocessing.Process`` per spec attempt
  with a one-way pipe back; a worker that exits without reporting
  marks its spec ``crashed`` and the matrix continues.
* **Timeouts** — a worker that stays silent past the per-spec deadline
  is terminated and its spec marked ``timeout``.
* **Bounded retry** — ``crashed``/``timeout``/``error`` outcomes are
  retried up to ``retries`` times with deterministic exponential
  backoff; guarantee failures (``failed``) are final, since the
  simulation is deterministic per seed.
* **Graceful degradation** — when worker processes cannot be spawned
  at all (sandboxes, restricted environments), the affected spec runs
  serially in-process; ``MatrixOptions(serial=True)`` forces that mode
  (timeouts and crash isolation are then unenforceable).

Determinism: the report never mentions worker counts, wall-clock
times, or completion order — per-spec entries are sorted by name,
worst-case tables break ties lexicographically, and telemetry shards
go through the canonical order-independent merge of
:mod:`repro.obs.merge` — so ``--jobs 1`` and ``--jobs 4`` produce
byte-identical reports for the same seed.
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.connection
import os
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.merge import make_shard, merge_documents
from repro.testbed.specs import ScenarioSpec, load_spec, run_spec

#: Format tag of the aggregated report document.
MATRIX_FORMAT = "mntp-matrix-report-v1"

#: Statuses that are retried (transient/runner-side); guarantee
#: failures are deterministic and final.
RETRYABLE_STATUSES = frozenset({"crashed", "timeout", "error"})

#: Statuses that hard-fail the matrix (rc 1 in the CLI/CI gate).
HARD_FAIL_STATUSES = frozenset(
    {"failed", "crashed", "timeout", "error", "invalid"}
)

#: A worker callable: (spec JSON, seed, attempt) -> outcome payload.
Worker = Callable[[str, int, int], Dict[str, Any]]


@dataclass(frozen=True)
class MatrixOptions:
    """Matrix execution knobs.

    Attributes:
        seed: Root seed passed to every spec run.
        jobs: Worker processes running concurrently.
        timeout_s: Per-spec deadline; a silent worker past it is
            terminated and the spec marked ``timeout``.
        retries: Extra attempts after a retryable outcome.
        backoff_s: Base of the deterministic exponential backoff
            between attempts (``backoff_s * 2**attempt``).
        tags: When non-empty, only specs carrying every listed tag run
            (the CLI's ``--smoke`` is ``tags=("smoke",)``).
        serial: Run specs in-process instead of worker processes
            (degraded mode: timeouts and crash isolation unenforced).
    """

    seed: int = 0
    jobs: int = 2
    timeout_s: float = 600.0
    retries: int = 1
    backoff_s: float = 0.05
    tags: Tuple[str, ...] = ()
    serial: bool = False

    def __post_init__(self) -> None:
        """Validate the knob ranges."""
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")


def _execute_spec(spec_json: str, seed: int, attempt: int) -> Dict[str, Any]:
    """Default worker: run one spec and return its judged outcome.

    Module-level so it pickles under any multiprocessing start method;
    tests swap in scripted workers to exercise the failure paths.
    """
    spec = ScenarioSpec.from_json(spec_json)
    result, judgement = run_spec(spec, seed=seed)
    stats = result.sntp_error_stats()
    summary: Dict[str, Any] = {
        "duration_s": result.duration,
        "sntp_samples": stats.count,
        "sntp_mean_abs_error_ms": round(stats.mean_abs * 1000.0, 3),
        "sntp_failures": result.sntp_failures,
    }
    if result.mntp_reports:
        mntp = result.mntp_error_stats()
        summary["mntp_reports"] = len(result.mntp_reports)
        summary["mntp_mean_abs_error_ms"] = round(mntp.mean_abs * 1000.0, 3)
    shard = None
    if result.telemetry is not None:
        shard = make_shard(result.telemetry, spec.name, meta={"seed": seed})
    return {
        "name": spec.name,
        "status": judgement["status"],
        "guarantees": judgement["guarantees"],
        "minimal_guarantees": judgement["minimal_guarantees"],
        "summary": summary,
        "shard": shard,
    }


def _worker_main(
    conn: Any, worker: Worker, spec_json: str, seed: int, attempt: int
) -> None:
    """Child-process entry: run the worker, ship the outcome, exit.

    Any exception is reported as an ``error`` message rather than a
    traceback on stderr, so the parent owns the retry decision.
    """
    try:
        outcome = worker(spec_json, seed, attempt)
        conn.send(("ok", outcome))
    except Exception as exc:  # any spec failure must reach the parent
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


def _entry(
    name: str,
    status: str,
    attempts: int,
    error: Optional[str] = None,
    outcome: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One per-spec report entry (fixed key set for determinism)."""
    outcome = outcome or {}
    return {
        "name": name,
        "status": status,
        "attempts": attempts,
        "error": error,
        "guarantees": outcome.get("guarantees"),
        "minimal_guarantees": outcome.get("minimal_guarantees"),
        "summary": outcome.get("summary"),
        # Carried to aggregation, then lifted out of the per-spec entry
        # into the canonical telemetry merge.
        "shard": outcome.get("shard"),
    }


def discover_specs(
    directory: str, tags: Tuple[str, ...] = ()
) -> Tuple[List[ScenarioSpec], List[Dict[str, Any]]]:
    """Load a spec directory fault-tolerantly.

    Returns (runnable specs sorted by name, ``invalid`` report entries
    for files that failed to load or collide on a name).  A broken
    file costs itself, never the directory — and it still hard-fails
    the matrix verdict, so CI catches it.
    """
    from repro.testbed.specs import iter_spec_files

    specs: Dict[str, ScenarioSpec] = {}
    first_file: Dict[str, str] = {}
    invalid: List[Dict[str, Any]] = []
    for path in iter_spec_files(directory):
        stem = os.path.splitext(os.path.basename(path))[0]
        try:
            spec = load_spec(path)
        except ValueError as exc:
            invalid.append(_entry(stem, "invalid", 0, error=str(exc)))
            continue
        if spec.name in specs:
            invalid.append(_entry(
                stem, "invalid", 0,
                error=f"{path}: duplicate spec name {spec.name!r} "
                f"(also defined by {first_file[spec.name]})",
            ))
            continue
        specs[spec.name] = spec
        first_file[spec.name] = path
    selected = [
        spec for _, spec in sorted(specs.items())
        if all(tag in spec.tags for tag in tags)
    ]
    return selected, invalid


def _run_attempt_serial(
    spec: ScenarioSpec, options: MatrixOptions, worker: Worker, attempt: int
) -> Tuple[str, Any]:
    """One in-process attempt (degraded mode / spawn-failure fallback)."""
    try:
        return "ok", worker(spec.to_json(), options.seed, attempt)
    except Exception as exc:  # parity with _worker_main's contract
        return "error", f"{type(exc).__name__}: {exc}"


def _finalize(
    kind: str, payload: Any, name: str, attempts: int
) -> Dict[str, Any]:
    """Fold a worker message into a final report entry."""
    if kind == "ok":
        return _entry(name, payload["status"], attempts, outcome=payload)
    return _entry(name, kind, attempts, error=str(payload))


def _run_serial(
    specs: List[ScenarioSpec], options: MatrixOptions, worker: Worker
) -> Dict[str, Dict[str, Any]]:
    """Serial execution with the same retry policy as the pool."""
    entries: Dict[str, Dict[str, Any]] = {}
    for spec in specs:
        for attempt in range(options.retries + 1):
            kind, payload = _run_attempt_serial(spec, options, worker,
                                                attempt)
            if kind == "ok" or attempt == options.retries:
                entries[spec.name] = _finalize(kind, payload, spec.name,
                                               attempt + 1)
                break
    return entries


def _run_pool(
    specs: List[ScenarioSpec], options: MatrixOptions, worker: Worker
) -> Dict[str, Dict[str, Any]]:
    """Process-pool execution with crash isolation and deadlines."""
    ctx = multiprocessing.get_context()
    entries: Dict[str, Dict[str, Any]] = {}
    # (spec, attempt, not-before wall time); ready_at implements the
    # deterministic inter-attempt backoff.
    queue: deque = deque((spec, 0, 0.0) for spec in specs)
    active: Dict[str, Dict[str, Any]] = {}

    def resolve(name: str, kind: str, payload: Any, attempt: int) -> None:
        """Finalize or requeue one finished attempt."""
        spec = active.pop(name)["spec"]
        if kind != "ok" and attempt < options.retries:
            ready_at = time.monotonic() + options.backoff_s * (2 ** attempt)
            queue.append((spec, attempt + 1, ready_at))
            return
        entries[name] = _finalize(kind, payload, name, attempt + 1)

    while queue or active:
        now = time.monotonic()
        # Launch as many ready specs as the job cap allows.
        for _ in range(len(queue)):
            if len(active) >= options.jobs:
                break
            spec, attempt, ready_at = queue.popleft()
            if ready_at > now and queue:
                queue.append((spec, attempt, ready_at))
                continue
            if ready_at > now:
                time.sleep(ready_at - now)
            try:
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, worker, spec.to_json(), options.seed,
                          attempt),
                )
                proc.start()
            except (OSError, PermissionError, NotImplementedError):
                # Cannot spawn workers here: degrade this spec to a
                # serial in-process attempt and keep going.
                kind, payload = _run_attempt_serial(spec, options, worker,
                                                    attempt)
                active[spec.name] = {"spec": spec}
                resolve(spec.name, kind, payload, attempt)
                continue
            child_conn.close()
            active[spec.name] = {
                "spec": spec,
                "proc": proc,
                "conn": parent_conn,
                "attempt": attempt,
                "deadline": time.monotonic() + options.timeout_s,
            }
        if not active:
            # Everything queued is holding its backoff; wait it out
            # instead of spinning.
            time.sleep(0.01)
            continue
        multiprocessing.connection.wait(
            [state["conn"] for state in active.values()], 0.05
        )
        for name in list(active):
            state = active[name]
            message = None
            if state["conn"].poll():
                try:
                    message = state["conn"].recv()
                except (EOFError, OSError):
                    message = None
            if message is not None:
                state["proc"].join(10.0)
                if state["proc"].is_alive():
                    state["proc"].kill()
                    state["proc"].join(10.0)
                resolve(name, message[0], message[1], state["attempt"])
            elif not state["proc"].is_alive():
                state["proc"].join(10.0)
                resolve(
                    name, "crashed",
                    "worker exited without reporting "
                    f"(exit code {state['proc'].exitcode})",
                    state["attempt"],
                )
            elif time.monotonic() >= state["deadline"]:
                state["proc"].terminate()
                state["proc"].join(10.0)
                if state["proc"].is_alive():
                    state["proc"].kill()
                    state["proc"].join(10.0)
                resolve(
                    name, "timeout",
                    f"no result within {options.timeout_s:g}s",
                    state["attempt"],
                )
    return entries


def _worst_tables(specs: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Worst observed value of each health signal across the matrix.

    Ties break toward the lexicographically smallest spec name (the
    scan order), keeping the table independent of completion order.
    """
    worst: Dict[str, Any] = {}
    for entry in specs:
        report = entry.get("guarantees")
        if not report:
            continue
        for signal, value in report.get("worst", {}).items():
            if value is None:
                continue
            seen = worst.get(signal)
            better = seen is None or (
                value < seen["value"] if signal.startswith("min_")
                else value > seen["value"]
            )
            if better:
                worst[signal] = {"value": value, "spec": entry["name"]}
    return worst


def _telemetry_summary(
    shards: Dict[str, Dict[str, Any]]
) -> Optional[Dict[str, Any]]:
    """Compact summary of the canonical cross-spec telemetry merge."""
    if not shards:
        return None
    merged = merge_documents([shards[name] for name in sorted(shards)])
    return {
        "shards": sorted(shards),
        "records": len(merged.get("records", [])),
        "metrics": len(merged.get("metrics", {})),
    }


def run_matrix(
    directory: str,
    options: MatrixOptions = MatrixOptions(),
    worker: Optional[Worker] = None,
) -> Dict[str, Any]:
    """Execute a spec directory and return the aggregated report.

    Args:
        directory: Directory of ``.json`` spec files.
        options: Execution knobs (see :class:`MatrixOptions`).
        worker: Override of the per-spec worker callable — the test
            hook for injecting crashing/hanging/flaky workers.
    """
    worker = worker if worker is not None else _execute_spec
    specs, invalid = discover_specs(directory, tags=options.tags)
    if options.serial:
        entries = _run_serial(specs, options, worker)
    else:
        entries = _run_pool(specs, options, worker)
    for entry in invalid:
        entries[entry["name"]] = entry
    ordered = [entries[name] for name in sorted(entries)]
    return _aggregate(ordered, options)


def _aggregate(
    ordered: List[Dict[str, Any]], options: MatrixOptions
) -> Dict[str, Any]:
    """Assemble the final ``mntp-matrix-report-v1`` document."""
    counts: Dict[str, int] = {}
    for entry in ordered:
        counts[entry["status"]] = counts.get(entry["status"], 0) + 1
    hard_failed = [
        entry["name"] for entry in ordered
        if entry["status"] in HARD_FAIL_STATUSES
    ]
    shards = {
        entry["name"]: entry.pop("shard")
        for entry in ordered
        if entry.get("shard") is not None
    }
    specs = []
    for entry in ordered:
        entry.pop("shard", None)
        specs.append(entry)
    return {
        "format": MATRIX_FORMAT,
        "seed": options.seed,
        "timeout_s": options.timeout_s,
        "retries": options.retries,
        "tags": list(options.tags),
        "specs": specs,
        "counts": {status: counts[status] for status in sorted(counts)},
        "worst": _worst_tables(specs),
        "telemetry": _telemetry_summary(shards),
        "verdict": {"ok": not hard_failed, "hard_failed": hard_failed},
    }


def report_to_json(report: Dict[str, Any]) -> str:
    """Canonical JSON encoding of a matrix report."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def render_matrix_text(report: Dict[str, Any]) -> str:
    """Human-readable rendering of a matrix report (no trailing \\n)."""
    from repro.reporting import render_table

    rows = []
    for entry in report["specs"]:
        guarantees = entry.get("guarantees") or {}
        worst = guarantees.get("worst", {})

        def cell(key: str, fmt: str) -> str:
            value = worst.get(key)
            return "n/a" if value is None else format(value, fmt)

        rows.append([
            entry["name"],
            entry["status"],
            entry["attempts"],
            guarantees.get("verdict", "n/a"),
            cell("p99_abs_error_ms", ".1f"),
            cell("drop_rate_ratio", ".2f"),
            cell("starvation_s", ".0f"),
            entry.get("error") or "",
        ])
    lines = [render_table(
        ["spec", "status", "attempts", "verdict", "worst p99 (ms)",
         "worst drop", "worst starv (s)", "error"],
        rows,
    )]
    verdict = report["verdict"]
    counts = ", ".join(
        f"{status}={count}" for status, count in report["counts"].items()
    )
    lines.append(f"matrix: {counts or 'no specs'}")
    if verdict["ok"]:
        lines.append("matrix verdict: OK")
    else:
        lines.append(
            "matrix verdict: HARD FAIL "
            f"({', '.join(verdict['hard_failed'])})"
        )
    return "\n".join(lines)

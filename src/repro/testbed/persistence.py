"""Experiment result persistence.

Saves :class:`~repro.testbed.experiment.ExperimentResult` objects as
JSON so runs can be archived, diffed across code versions, and
post-processed without re-simulating.  The format is versioned and
forward-checked on load.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict

from repro.core.protocol import MntpPhase, MntpReport
from repro.obs.explain import explain_run
from repro.testbed.experiment import ExperimentResult, OffsetPoint

FORMAT = "mntp-experiment-v1"

#: Worst-sample depth of the embedded explain report.
_EXPLAIN_WORST_N = 5


def result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """Convert a result to a JSON-serialisable dict.

    The run's telemetry snapshot rides along under ``"telemetry"``
    when present, so archived runs stay inspectable with
    ``repro-mntp trace`` / ``repro-mntp metrics``; a compact
    root-cause report (``repro.obs.explain``) is embedded under
    ``"explain"`` so archives answer "why was this run noisy?"
    without re-assembly.
    """
    out = {
        "format": FORMAT,
        "duration": result.duration,
        "sntp_failures": result.sntp_failures,
        "sntp": [_point(p) for p in result.sntp],
        "true_offsets": [_point(p) for p in result.true_offsets],
        "mntp_reports": [_report(r) for r in result.mntp_reports],
    }
    if result.telemetry is not None:
        out["telemetry"] = result.telemetry
        out["explain"] = explain_run(
            result.telemetry, samples=result.offset_samples()
        ).to_dict(worst_n=_EXPLAIN_WORST_N)
    if result.health is not None:
        out["health"] = result.health
    return out


def result_from_dict(data: Dict[str, Any]) -> ExperimentResult:
    """Rebuild a result from :func:`result_to_dict` output."""
    if data.get("format") != FORMAT:
        raise ValueError(f"not a {FORMAT} document")
    result = ExperimentResult(
        duration=float(data["duration"]),
        sntp_failures=int(data.get("sntp_failures", 0)),
    )
    result.sntp = [_point_from(d) for d in data.get("sntp", [])]
    result.true_offsets = [_point_from(d) for d in data.get("true_offsets", [])]
    result.mntp_reports = [_report_from(d) for d in data.get("mntp_reports", [])]
    result.telemetry = data.get("telemetry")
    result.explain = data.get("explain")
    result.health = data.get("health")
    return result


def save_result(result: ExperimentResult, fileobj: IO[str]) -> None:
    """Write a result as JSON."""
    json.dump(result_to_dict(result), fileobj)


def load_result(fileobj: IO[str]) -> ExperimentResult:
    """Read a result written by :func:`save_result`."""
    return result_from_dict(json.load(fileobj))


def _point(p: OffsetPoint) -> Dict[str, Any]:
    out: Dict[str, Any] = {"t": p.time, "o": p.offset}
    if p.truth == p.truth:  # not NaN
        out["truth"] = p.truth
    return out


def _point_from(d: Dict[str, Any]) -> OffsetPoint:
    return OffsetPoint(
        time=float(d["t"]),
        offset=float(d["o"]),
        truth=float(d["truth"]) if "truth" in d else float("nan"),
    )


def _report(r: MntpReport) -> Dict[str, Any]:
    return {
        "t": r.time,
        "o": r.offset,
        "accepted": r.accepted,
        "phase": r.phase.value,
        "corrected": r.corrected,
        "residual": r.residual,
        "truth": r.truth,
    }


def _report_from(d: Dict[str, Any]) -> MntpReport:
    return MntpReport(
        time=float(d["t"]),
        offset=float(d["o"]),
        accepted=bool(d["accepted"]),
        phase=MntpPhase(d["phase"]),
        corrected=bool(d.get("corrected", False)),
        residual=d.get("residual"),
        truth=d.get("truth"),
    )

"""Trace parsing: pcap bytes -> per-client observations.

Mirrors the paper's light-weight tool "based on netdissect.h and
print-ntp.c": walk every captured frame, dissect the NTP payload, and
for each client-mode request estimate the forward one-way delay as

    OWD = capture timestamp (server clock, ~true) - origin timestamp
          (client clock)

which is accurate exactly when the client's clock is synchronized —
hence the downstream filtering heuristic.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Dict, List

from repro.ntp.constants import NTP_PORT
from repro.pcaplib.ntpdissect import dissect_ntp_packet
from repro.pcaplib.pcap import PcapReader


@dataclass
class ClientObservation:
    """Everything observed about one client IP in a server's trace.

    Attributes:
        ip: Client address.
        owd_estimates: Per-request forward OWD estimates (seconds; may
            be negative or absurd for unsynchronized clients).
        sntp_requests / ntp_requests: Protocol classification counts
            from the request wire format.
        ip_version: 4 or 6.
    """

    ip: str
    owd_estimates: List[float] = field(default_factory=list)
    sntp_requests: int = 0
    ntp_requests: int = 0
    ip_version: int = 4

    @property
    def total_requests(self) -> int:
        """Requests seen from this client."""
        return self.sntp_requests + self.ntp_requests

    @property
    def uses_sntp(self) -> bool:
        """Majority-vote protocol classification."""
        return self.sntp_requests >= self.ntp_requests

    def min_owd(self) -> float:
        """Minimum OWD estimate (callers filter validity first)."""
        if not self.owd_estimates:
            raise ValueError(f"client {self.ip} has no OWD estimates")
        return min(self.owd_estimates)


def parse_trace(pcap_bytes: bytes, pivot_unix: float = 0.0) -> Dict[str, ClientObservation]:
    """Parse a server-side pcap into per-client observations.

    Args:
        pcap_bytes: A classic pcap stream.
        pivot_unix: Era pivot for NTP timestamp decoding (use the trace
            epoch).

    Only client->server requests contribute; responses are skipped the
    way the paper's OWD extraction does (the reverse direction's OWD is
    not observable at the server).
    """
    observations: Dict[str, ClientObservation] = {}
    reader = PcapReader(io.BytesIO(pcap_bytes))
    for record in reader:
        dissection = dissect_ntp_packet(record.data, pivot_unix=pivot_unix or record.ts)
        if dissection is None:
            continue
        if dissection.dst_port != NTP_PORT or not dissection.is_request:
            continue
        packet = dissection.packet
        if packet.transmit_ts is None:
            continue
        obs = observations.get(dissection.src_ip)
        if obs is None:
            obs = ClientObservation(
                ip=dissection.src_ip, ip_version=dissection.ip_version
            )
            observations[dissection.src_ip] = obs
        obs.owd_estimates.append(record.ts - packet.transmit_ts)
        if packet.looks_like_sntp_request():
            obs.sntp_requests += 1
        else:
            obs.ntp_requests += 1
    return observations

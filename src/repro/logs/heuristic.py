"""Synchronized-client filtering heuristic (Durairajan et al. [23]).

The OWD estimate ``capture_ts - origin_ts`` embeds the client's clock
offset; clients whose clocks are far from true produce negative or
absurdly large "delays".  The heuristic infers the synchronization
state of each client and discards invalid latency measurements:

* a sample is *plausible* if its OWD lies in ``(0, max_owd)``;
* a client is *synchronized* if at least ``min_valid_fraction`` of its
  samples are plausible and its minimum plausible OWD is below
  ``max_min_owd`` (a synchronized client's floor is a real propagation
  delay, not an offset artefact).

Only the plausible samples of synchronized clients survive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.logs.parser import ClientObservation


@dataclass(frozen=True)
class HeuristicParams:
    """Filter thresholds.

    Attributes:
        max_owd: Upper plausibility bound on a single OWD sample
            (the paper observes real OWDs up to ~1 s; 3 s is generous).
        max_min_owd: Upper bound on a synchronized client's floor.
        min_valid_fraction: Share of plausible samples required.
    """

    max_owd: float = 3.0
    max_min_owd: float = 2.0
    min_valid_fraction: float = 0.8


def filter_synchronized_clients(
    observations: Dict[str, ClientObservation],
    params: HeuristicParams = HeuristicParams(),
) -> Dict[str, ClientObservation]:
    """Return filtered observations for synchronized clients only.

    Each surviving :class:`ClientObservation` is a copy whose
    ``owd_estimates`` contain just the plausible samples.
    """
    filtered: Dict[str, ClientObservation] = {}
    for ip, obs in observations.items():
        if not obs.owd_estimates:
            continue
        plausible = [o for o in obs.owd_estimates if 0.0 < o < params.max_owd]
        if not plausible:
            continue
        if len(plausible) / len(obs.owd_estimates) < params.min_valid_fraction:
            continue
        if min(plausible) > params.max_min_owd:
            continue
        filtered[ip] = ClientObservation(
            ip=obs.ip,
            owd_estimates=plausible,
            sntp_requests=obs.sntp_requests,
            ntp_requests=obs.ntp_requests,
            ip_version=obs.ip_version,
        )
    return filtered

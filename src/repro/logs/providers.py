"""The synthetic top-25 service providers.

Figure 1 ranks the top-25 providers (by unique clients) into four
latency categories; Figure 2 reports that >95 % of mobile-provider
clients speak SNTP.  Provider names are synthetic (the paper anonymises
them) but carry the keywords the classifier looks for, exactly as real
reverse-DNS names do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.net.internet import PROVIDER_CATEGORY_PROFILES, CategoryProfile


@dataclass(frozen=True)
class Provider:
    """One service provider population.

    Attributes:
        sp_id: Rank used in Figure 1 (SP 1-25).
        name: AS / organisation name (carries classification keywords).
        domain: Reverse-DNS suffix for client hostnames.
        category: Latency category key ("cloud", "isp", ...).
        asn: Synthetic AS number.
        prefix16: Second octet of the provider's 10.x.0.0/16 block.
        client_weight: Relative share of a server's client population.
        sntp_share: Fraction of this provider's clients using SNTP.
        latency_scale: Multiplier on the category's median min-OWD
            (spreads providers within a category).
    """

    sp_id: int
    name: str
    domain: str
    category: str
    asn: int
    prefix16: int
    client_weight: float
    sntp_share: float
    latency_scale: float = 1.0

    @property
    def profile(self) -> CategoryProfile:
        """The provider's latency category profile."""
        return PROVIDER_CATEGORY_PROFILES[self.category]


def _p(sp, name, domain, category, weight, sntp, scale=1.0) -> Provider:
    return Provider(
        sp_id=sp,
        name=name,
        domain=domain,
        category=category,
        asn=64_500 + sp,
        prefix16=sp,
        client_weight=weight,
        sntp_share=sntp,
        latency_scale=scale,
    )


#: SP 1-3 cloud/hosting, SP 4-9 ISPs, SP 10-21 broadband, SP 22-25 mobile.
PROVIDERS: List[Provider] = [
    _p(1, "Nimbus Cloud Hosting", "nimbus-cloud.example", "cloud", 6.0, 0.15, 0.9),
    _p(2, "Vertex Amazon-class Datacenters", "vertexdc.example", "cloud", 5.0, 0.20, 1.0),
    _p(3, "StratoServe Hosting", "stratoserve.example", "cloud", 4.0, 0.25, 1.1),
    _p(4, "Heartland Internet Service", "heartland-isp.example", "isp", 5.5, 0.45, 0.9),
    _p(5, "Lakeshore Internet", "lakeshore-net.example", "isp", 5.0, 0.50, 1.0),
    _p(6, "Summit Internet Exchange", "summit-ix.example", "isp", 4.5, 0.40, 1.0),
    _p(7, "Prairie Fiber ISP", "prairiefiber.example", "isp", 4.0, 0.55, 1.1),
    _p(8, "Bluewater Networks", "bluewater.example", "isp", 3.5, 0.50, 1.2),
    _p(9, "Canyon Internet Co", "canyon-net.example", "isp", 3.0, 0.45, 1.2),
    _p(10, "Maple DSL Broadband", "maple-dsl.example", "broadband", 4.5, 0.65, 0.8),
    _p(11, "Harbor Cable Broadband", "harborcable.example", "broadband", 4.2, 0.70, 0.85),
    _p(12, "Pioneer Home Internet", "pioneerhome.example", "broadband", 4.0, 0.60, 0.9),
    _p(13, "Foothill Cable", "foothillcable.example", "broadband", 3.8, 0.68, 0.95),
    _p(14, "Riverbend Broadband", "riverbend-bb.example", "broadband", 3.6, 0.72, 1.0),
    _p(15, "Lighthouse Cable", "lighthouse-catv.example", "broadband", 3.4, 0.66, 1.0),
    _p(16, "Sierra Residential Net", "sierra-res.example", "broadband", 3.2, 0.62, 1.05),
    _p(17, "Cascade Home Broadband", "cascadehome.example", "broadband", 3.0, 0.70, 1.1),
    _p(18, "Gulfport Cable", "gulfportcable.example", "broadband", 2.8, 0.64, 1.1),
    _p(19, "Keystone DSL", "keystone-dsl.example", "broadband", 2.6, 0.67, 1.15),
    _p(20, "Redwood Residential", "redwood-res.example", "broadband", 2.4, 0.61, 1.2),
    _p(21, "Bayline Cable Internet", "bayline-catv.example", "broadband", 2.2, 0.69, 1.25),
    _p(22, "Meridian Mobile Wireless", "meridian-mobile.example", "mobile", 5.5, 0.98, 0.9),
    _p(23, "Aurora Cellular", "aurora-cell.example", "mobile", 5.0, 0.97, 1.0),
    _p(24, "Pinnacle Wireless 4G", "pinnacle-wireless.example", "mobile", 4.5, 0.99, 1.1),
    _p(25, "Horizon Mobile Sprint-class", "horizon-mobile.example", "mobile", 4.0, 0.96, 1.2),
]


def top_providers(count: int = 25) -> List[Provider]:
    """The top ``count`` providers by client weight (Figure 1's ranking
    is by unique IPs; weight is its generator-side analogue)."""
    ranked = sorted(PROVIDERS, key=lambda p: -p.client_weight)
    return ranked[:count]


def provider_by_sp(sp_id: int) -> Provider:
    """Look up a provider by its SP rank."""
    for provider in PROVIDERS:
        if provider.sp_id == sp_id:
            return provider
    raise KeyError(f"no provider SP {sp_id}")

"""Ready-to-render datasets for the §3.1 figures.

The benches print text renderings; this module exposes the underlying
figure data in plotting-library-agnostic form — five-number boxplot
summaries per provider (Figure 1 left), CDF arrays per provider
(Figure 1 right), and stacked protocol-share bars (Figure 2) — so a
downstream user with matplotlib can regenerate the actual plots in a
few lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.logs.analysis import LogStudy


@dataclass(frozen=True)
class BoxplotStats:
    """Five-number summary plus whisker bounds for one provider.

    Attributes:
        label: "SP <rank>" as in the paper's x-axis.
        category: Provider category.
        minimum / q1 / median / q3 / maximum: Distribution summary
            (seconds).
        whisker_low / whisker_high: Tukey 1.5*IQR whisker positions.
        count: Client count behind the box.
    """

    label: str
    category: str
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    whisker_low: float
    whisker_high: float
    count: int


@dataclass(frozen=True)
class CdfSeries:
    """One provider's empirical CDF.

    Attributes:
        label: Provider label.
        category: Provider category.
        values: Sorted min-OWDs (seconds).
        probabilities: Matching cumulative probabilities (i/n).
    """

    label: str
    category: str
    values: List[float]
    probabilities: List[float]


@dataclass(frozen=True)
class ShareBar:
    """One stacked bar of Figure 2.

    Attributes:
        label: Server id or provider label.
        sntp_fraction / ntp_fraction: The two stack segments (sum 1.0).
        total_clients: Clients behind the bar.
    """

    label: str
    sntp_fraction: float
    ntp_fraction: float
    total_clients: int


def figure1_boxplots(study: LogStudy, server_id: str) -> List[BoxplotStats]:
    """Figure-1-left data: per-provider min-OWD boxplots, SP order."""
    out: List[BoxplotStats] = []
    for pl in study.figure1(server_id):
        values = np.asarray(pl.min_owds, dtype=float)
        if values.size == 0:
            continue
        q1 = float(np.percentile(values, 25))
        q3 = float(np.percentile(values, 75))
        iqr = q3 - q1
        low_bound = q1 - 1.5 * iqr
        high_bound = q3 + 1.5 * iqr
        inside = values[(values >= low_bound) & (values <= high_bound)]
        whisk = inside if inside.size else values
        # With tiny samples, the interpolated quartiles can fall outside
        # the in-whisker data; clamp so whiskers always bracket the box.
        whisker_low = min(float(whisk.min()), q1)
        whisker_high = max(float(whisk.max()), q3)
        out.append(BoxplotStats(
            label=f"SP {pl.provider.sp_id}",
            category=pl.category,
            minimum=float(values.min()),
            q1=q1,
            median=float(np.median(values)),
            q3=q3,
            maximum=float(values.max()),
            whisker_low=whisker_low,
            whisker_high=whisker_high,
            count=int(values.size),
        ))
    return out


def figure1_cdfs(study: LogStudy, server_id: str) -> List[CdfSeries]:
    """Figure-1-right data: per-provider min-OWD CDFs, SP order."""
    out: List[CdfSeries] = []
    for pl in study.figure1(server_id):
        values = sorted(pl.min_owds)
        if not values:
            continue
        n = len(values)
        out.append(CdfSeries(
            label=f"SP {pl.provider.sp_id}",
            category=pl.category,
            values=[float(v) for v in values],
            probabilities=[(i + 1) / n for i in range(n)],
        ))
    return out


def figure2_server_bars(study: LogStudy) -> List[ShareBar]:
    """Figure-2-left data: per-server SNTP/NTP stacked bars."""
    out: List[ShareBar] = []
    for server_id, (sntp, ntp) in study.figure2_per_server().items():
        total = sntp + ntp
        if total == 0:
            continue
        out.append(ShareBar(
            label=server_id,
            sntp_fraction=sntp / total,
            ntp_fraction=ntp / total,
            total_clients=total,
        ))
    return out


def figure2_provider_bars(study: LogStudy, server_id: str) -> List[ShareBar]:
    """Figure-2-right data: per-provider stacked bars at one server."""
    out: List[ShareBar] = []
    for name, (sntp, ntp) in sorted(study.figure2_per_provider(server_id).items()):
        total = sntp + ntp
        if total == 0:
            continue
        out.append(ShareBar(
            label=name,
            sntp_fraction=sntp / total,
            ntp_fraction=ntp / total,
            total_clients=total,
        ))
    return out

"""Client classification (§3.1).

Two classifiers, both as the paper describes:

* **wired vs wireless / provider category** — "a simple process that
  leverages keywords and provider names (e.g., mobile, cloud, Amazon,
  Sprint, etc.) present in hostnames";
* **SNTP vs NTP** — from the request wire format (zeroed fields),
  counted per client then aggregated per server/provider.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.logs.asndb import AsnDatabase, AsnRecord
from repro.logs.parser import ClientObservation

#: Keyword table in priority order: first match wins.
_CATEGORY_KEYWORDS = (
    ("mobile", ("mobile", "wireless", "cell", "4g", "lte", "sprint", "wwan")),
    ("cloud", ("cloud", "hosting", "amazon", "datacenter", "dc.", "serve")),
    ("broadband", ("dsl", "cable", "catv", "broadband", "home", "res", "residential")),
)


def classify_provider_kind(record: AsnRecord) -> str:
    """Keyword classification of a lookup record into a category.

    Returns one of "mobile", "cloud", "broadband", "isp" (the default
    when no keyword matches — ISPs are the residual class in the paper
    too).
    """
    haystack = f"{record.as_name} {record.hostname}".lower()
    for category, keywords in _CATEGORY_KEYWORDS:
        if any(k in haystack for k in keywords):
            return category
    return "isp"


def is_wireless(record: AsnRecord) -> bool:
    """Binary wired/wireless split: wireless == mobile keywords."""
    return classify_provider_kind(record) == "mobile"


def classify_protocol_share(
    observations: Iterable[ClientObservation],
) -> Tuple[int, int]:
    """Count (sntp_clients, ntp_clients) by per-client majority vote."""
    sntp = 0
    ntp = 0
    for obs in observations:
        if obs.uses_sntp:
            sntp += 1
        else:
            ntp += 1
    return sntp, ntp


def group_by_provider(
    observations: Dict[str, ClientObservation],
    asndb: Optional[AsnDatabase] = None,
) -> Dict[str, "list[tuple[AsnRecord, ClientObservation]]"]:
    """Group observations by provider name via ASN lookup.

    Unmapped addresses are dropped (the paper likewise ignores clients
    it cannot attribute).
    """
    asndb = asndb or AsnDatabase()
    grouped: Dict[str, list] = {}
    for ip, obs in observations.items():
        record = asndb.lookup(ip)
        if record is None:
            continue
        grouped.setdefault(record.provider.name, []).append((record, obs))
    return grouped

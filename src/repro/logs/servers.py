"""The 19 NTP servers of Table 1.

All published per-server attributes are transcribed here; the trace
generator subsamples the client populations deterministically (running
209 million packets through a Python pipeline is pointless), and the
analysis reports both the published and the generated counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class ServerDescriptor:
    """One NTP server's published statistics.

    Attributes:
        server_id: Anonymised name from Table 1.
        unique_clients: Published unique client count.
        stratum: Server stratum (1 or 2).
        ip_versions: ("v4",) or ("v4", "v6").
        total_measurements: Published OWD measurement count.
        isp_specific: CI1-4 / EN1-2 are ISP-internal servers whose
            clients are mostly full-NTP infrastructure hosts.
        server_ip: Synthetic address the generator uses.
    """

    server_id: str
    unique_clients: int
    stratum: int
    ip_versions: Tuple[str, ...]
    total_measurements: int
    isp_specific: bool = False

    @property
    def server_ip(self) -> str:
        """Deterministic synthetic server address."""
        index = [s.server_id for s in TABLE1_SERVERS].index(self.server_id)
        return f"192.0.2.{index + 1}"

    @property
    def mean_requests_per_client(self) -> float:
        """Published measurements / clients — drives the generator's
        per-client request-count distribution."""
        return self.total_measurements / max(1, self.unique_clients)


def _s(sid, clients, stratum, versions, meas, isp=False) -> ServerDescriptor:
    return ServerDescriptor(
        server_id=sid,
        unique_clients=clients,
        stratum=stratum,
        ip_versions=versions,
        total_measurements=meas,
        isp_specific=isp,
    )


V4 = ("v4",)
V46 = ("v4", "v6")

#: Transcription of Table 1.
TABLE1_SERVERS: List[ServerDescriptor] = [
    _s("AG1", 639_704, 2, V4, 9_988_576),
    _s("CI1", 606, 2, V46, 1_480_571, isp=True),
    _s("CI2", 359, 2, V46, 1_268_928, isp=True),
    _s("CI3", 335, 2, V46, 812_104, isp=True),
    _s("CI4", 262, 2, V46, 763_847, isp=True),
    _s("EN1", 228, 2, V46, 411_253, isp=True),
    _s("EN2", 232, 2, V46, 437_440, isp=True),
    _s("JW1", 12_769, 1, V4, 354_530),
    _s("JW2", 35_548, 1, V4, 869_721),
    _s("MW1", 2_746, 1, V4, 197_900),
    _s("MW2", 9_482_918, 2, V4, 46_232_069),
    _s("MW3", 1_141_163, 2, V4, 10_948_402),
    _s("MW4", 2_525_072, 2, V4, 11_126_121),
    _s("MI1", 1_078_308, 1, V4, 63_907_095),
    _s("SU1", 21_101, 1, V46, 16_404_882),
    _s("UI1", 36_559, 2, V4, 18_426_282),
    _s("UI2", 18_925, 2, V4, 14_194_081),
    _s("UI3", 177_957, 2, V4, 9_254_843),
    _s("PP1", 128_644, 2, V46, 2_369_277),
]


def server_by_id(server_id: str) -> ServerDescriptor:
    """Look up a Table-1 server by name."""
    for server in TABLE1_SERVERS:
        if server.server_id == server_id:
            return server
    raise KeyError(f"no server {server_id!r}")

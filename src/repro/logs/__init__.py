"""The §3.1 NTP-server log study.

Synthesises per-server packet traces calibrated to the paper's Table 1
(client counts, strata, IP versions, measurement volumes) and Figure 1
(per-provider-category latency profiles), writes them as genuine pcap
bytes via :mod:`repro.pcaplib`, then runs the same analysis pipeline the
paper's tcpdump-based tool performs: dissect -> synchronized-client
filtering heuristic -> wired/wireless + SNTP/NTP classification ->
per-provider latency statistics.
"""

from repro.logs.providers import (
    Provider,
    PROVIDERS,
    top_providers,
)
from repro.logs.asndb import AsnDatabase, AsnRecord
from repro.logs.servers import ServerDescriptor, TABLE1_SERVERS
from repro.logs.generator import TraceGenerator, GeneratorOptions
from repro.logs.parser import parse_trace, ClientObservation
from repro.logs.heuristic import filter_synchronized_clients
from repro.logs.classify import classify_provider_kind, classify_protocol_share
from repro.logs.analysis import LogStudy, ServerSummary, ProviderLatency
from repro.logs.figures import (
    BoxplotStats,
    CdfSeries,
    ShareBar,
    figure1_boxplots,
    figure1_cdfs,
    figure2_provider_bars,
    figure2_server_bars,
)

__all__ = [
    "Provider",
    "PROVIDERS",
    "top_providers",
    "AsnDatabase",
    "AsnRecord",
    "ServerDescriptor",
    "TABLE1_SERVERS",
    "TraceGenerator",
    "GeneratorOptions",
    "parse_trace",
    "ClientObservation",
    "filter_synchronized_clients",
    "classify_provider_kind",
    "classify_protocol_share",
    "LogStudy",
    "ServerSummary",
    "ProviderLatency",
    "BoxplotStats",
    "CdfSeries",
    "ShareBar",
    "figure1_boxplots",
    "figure1_cdfs",
    "figure2_provider_bars",
    "figure2_server_bars",
]

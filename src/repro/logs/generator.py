"""Synthetic NTP-server trace generation.

For each Table-1 server a one-day client population is drawn:

* providers mixed by client weight (ISP-specific servers CI1-4/EN1-2
  instead serve mostly full-NTP infrastructure hosts of one ISP);
* each client gets an address from its provider's block, a protocol
  (SNTP with the provider's share), a min-OWD from the provider's
  latency profile, a request count matching the server's published
  measurements-per-client ratio, and a clock state — most clients are
  synchronized (small offset), some are wildly off so the
  synchronized-client heuristic has something to reject;
* every request/response pair is emitted as genuine Ethernet/IP/UDP/NTP
  bytes into a pcap stream with server-side capture timestamps.

Populations are subsampled by ``scale`` (the paper's full day is 209 M
packets); all draws come from named RNG streams so traces are
reproducible byte for byte.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.logs.asndb import AsnDatabase
from repro.logs.providers import PROVIDERS, Provider
from repro.logs.servers import ServerDescriptor
from repro.net.internet import InternetPath
from repro.ntp.constants import NTP_PORT, Mode
from repro.ntp.packet import NtpPacket
from repro.pcaplib.ethernet import ETHERTYPE_IPV4, ETHERTYPE_IPV6, EthernetFrame
from repro.pcaplib.ip import PROTO_UDP, Ipv4Header, Ipv6Header
from repro.pcaplib.pcap import PcapRecord, PcapWriter
from repro.pcaplib.udp import UdpDatagram
from repro.simcore.random import RngRegistry

#: Trace epoch: an arbitrary 2016 instant (the study's collection year).
TRACE_EPOCH_UNIX = 1_460_000_000.0

_SERVER_MAC = "02:00:00:00:00:01"
_CLIENT_MAC = "02:00:00:00:00:02"


@dataclass
class GeneratorOptions:
    """Trace-generation knobs.

    Attributes:
        scale: Fraction of the published client population to generate.
        min_clients / max_clients: Per-server clamps after scaling.
        max_requests_per_client: Cap on generated requests per client.
        day_seconds: Trace duration (the paper's logs cover 24 h).
        synchronized_fraction: Clients with a near-true clock.
        unsynced_offset_range: |offset| range (seconds) for the rest.
        ipv6_share: Fraction of clients using IPv6 on v4/v6 servers.
    """

    scale: float = 1e-4
    min_clients: int = 30
    max_clients: int = 1500
    max_requests_per_client: int = 60
    day_seconds: float = 86_400.0
    synchronized_fraction: float = 0.85
    unsynced_offset_range: "tuple[float, float]" = (5.0, 300.0)
    ipv6_share: float = 0.2


@dataclass
class GeneratedClient:
    """Ground truth for one generated client (kept for test oracles)."""

    ip: str
    provider: Provider
    uses_sntp: bool
    min_owd: float
    clock_offset: float
    requests: int
    synchronized: bool


class TraceGenerator:
    """Builds one server's pcap trace.

    Args:
        server: The Table-1 server descriptor.
        seed: Root seed (per-server streams are derived from it and the
            server id, so each server's trace is independent).
        options: Generation knobs.
    """

    def __init__(
        self,
        server: ServerDescriptor,
        seed: int = 0,
        options: GeneratorOptions = GeneratorOptions(),
    ) -> None:
        self.server = server
        self.options = options
        self._rng_registry = RngRegistry(seed)
        self._rng = self._rng_registry.stream(f"trace:{server.server_id}")
        self._asndb = AsnDatabase()
        self.clients: List[GeneratedClient] = []

    # -- population ------------------------------------------------------------

    def _client_count(self) -> int:
        opts = self.options
        scaled = int(round(self.server.unique_clients * opts.scale))
        return max(opts.min_clients, min(opts.max_clients, scaled))

    def _pick_provider(self) -> Provider:
        if self.server.isp_specific:
            # ISP-internal server: clients are that ISP's own hosts.
            isp_pool = [p for p in PROVIDERS if p.category == "isp"]
            anchor = isp_pool[hash(self.server.server_id) % len(isp_pool)]
            if self._rng.random() < 0.9:
                return anchor
        weights = np.asarray([p.client_weight for p in PROVIDERS])
        weights = weights / weights.sum()
        return PROVIDERS[int(self._rng.choice(len(PROVIDERS), p=weights))]

    def _draw_clients(self) -> List[GeneratedClient]:
        opts = self.options
        count = self._client_count()
        mean_requests = min(
            float(opts.max_requests_per_client), self.server.mean_requests_per_client
        )
        clients: List[GeneratedClient] = []
        per_provider_index: dict = {}
        for _ in range(count):
            provider = self._pick_provider()
            index = per_provider_index.get(provider.sp_id, 0)
            per_provider_index[provider.sp_id] = index + 1
            use_v6 = (
                "v6" in self.server.ip_versions
                and self._rng.random() < opts.ipv6_share
            )
            # Unique-per-trace index so addresses never collide between
            # servers of the same study run.
            ip = self._asndb.client_ip(provider, index, ipv6=use_v6)
            uses_sntp = self._rng.random() < (
                0.05 if self.server.isp_specific else provider.sntp_share
            )
            path = InternetPath(provider.profile, self._rng)
            min_owd = path.sample_client_min_owd() * provider.latency_scale
            synchronized = self._rng.random() < opts.synchronized_fraction
            if synchronized:
                clock_offset = float(self._rng.normal(0.0, 0.020))
            else:
                lo, hi = opts.unsynced_offset_range
                clock_offset = float(self._rng.uniform(lo, hi)) * (
                    1 if self._rng.random() < 0.5 else -1
                )
            if uses_sntp:
                # SNTP clients poll rarely (Android: ~daily).
                requests = 1 + int(self._rng.poisson(2.0))
            else:
                requests = max(
                    2,
                    int(
                        self._rng.lognormal(
                            mean=np.log(max(2.0, mean_requests)), sigma=0.6
                        )
                    ),
                )
            requests = min(requests, opts.max_requests_per_client)
            clients.append(
                GeneratedClient(
                    ip=ip,
                    provider=provider,
                    uses_sntp=uses_sntp,
                    min_owd=min_owd,
                    clock_offset=clock_offset,
                    requests=requests,
                    synchronized=synchronized,
                )
            )
        return clients

    # -- packet emission -----------------------------------------------------------

    def generate(self, fileobj: Optional[io.IOBase] = None) -> bytes:
        """Generate the trace; returns the pcap bytes (also written to
        ``fileobj`` if given)."""
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        self.clients = self._draw_clients()
        records: List[PcapRecord] = []
        for client in self.clients:
            records.extend(self._client_records(client))
        records.sort(key=lambda r: r.ts)
        writer.write_all(records)
        data = buffer.getvalue()
        if fileobj is not None:
            fileobj.write(data)
        return data

    def _client_records(self, client: GeneratedClient) -> List[PcapRecord]:
        opts = self.options
        records: List[PcapRecord] = []
        server_ip = self.server.server_ip
        ipv6 = ":" in client.ip
        if ipv6:
            # The server's v6 address mirrors its v4 identity.
            server_addr = f"2001:db8:ffff::{self.server.server_ip.split('.')[-1]}"
        else:
            server_addr = server_ip
        src_port = int(self._rng.integers(1024, 65_000))
        times = np.sort(self._rng.uniform(0, opts.day_seconds, size=client.requests))
        for t in times:
            true_send = TRACE_EPOCH_UNIX + float(t)
            owd_fwd = client.min_owd + float(self._rng.exponential(client.min_owd * 0.15))
            arrive = true_send + owd_fwd
            client_xmt = true_send + client.clock_offset
            if client.uses_sntp:
                request = NtpPacket.sntp_request(client_xmt)
            else:
                request = NtpPacket.ntp_request(
                    client_xmt, poll=int(self._rng.integers(6, 11))
                )
            records.append(
                self._frame(
                    ts=arrive,
                    src_ip=client.ip,
                    dst_ip=server_addr,
                    src_port=src_port,
                    dst_port=NTP_PORT,
                    payload=request.encode(),
                    ipv6=ipv6,
                )
            )
            # Server response captured on its way out.
            depart = arrive + 0.0005
            response = NtpPacket(
                mode=Mode.SERVER,
                version=request.version,
                stratum=self.server.stratum,
                poll=request.poll,
                precision=-20,
                root_delay=0.001 * self.server.stratum,
                root_dispersion=0.002 * self.server.stratum,
                ref_id=b"GPS\x00",
                reference_ts=arrive - 16.0,
                origin_ts=request.transmit_ts,
                receive_ts=arrive,
                transmit_ts=depart,
            )
            records.append(
                self._frame(
                    ts=depart,
                    src_ip=server_addr,
                    dst_ip=client.ip,
                    src_port=NTP_PORT,
                    dst_port=src_port,
                    payload=response.encode(),
                    ipv6=ipv6,
                )
            )
        return records

    def _frame(
        self,
        ts: float,
        src_ip: str,
        dst_ip: str,
        src_port: int,
        dst_port: int,
        payload: bytes,
        ipv6: bool,
    ) -> PcapRecord:
        udp = UdpDatagram(src_port=src_port, dst_port=dst_port, payload=payload)
        udp_bytes = udp.encode(src_ip, dst_ip)
        if ipv6:
            ip_bytes = Ipv6Header(
                src=src_ip, dst=dst_ip, next_header=PROTO_UDP, payload=udp_bytes
            ).encode()
            ethertype = ETHERTYPE_IPV6
        else:
            ip_bytes = Ipv4Header(
                src=src_ip, dst=dst_ip, protocol=PROTO_UDP, payload=udp_bytes
            ).encode()
            ethertype = ETHERTYPE_IPV4
        frame = EthernetFrame(
            dst=_SERVER_MAC, src=_CLIENT_MAC, ethertype=ethertype, payload=ip_bytes
        )
        return PcapRecord(ts=ts, data=frame.encode())

"""Synthetic IP -> ASN/provider registry (Team Cymru substitute).

Client IPv4 addresses are allocated deterministically from per-provider
``10.<sp>.0.0/16`` blocks (IPv6 from ``2001:db8:<sp>::/48``), so lookup
is pure arithmetic — the same whois-style (ASN, AS name, hostname)
tuple the paper obtains from Team Cymru plus reverse DNS.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Optional

from repro.logs.providers import PROVIDERS, Provider


@dataclass(frozen=True)
class AsnRecord:
    """Lookup result for one client address.

    Attributes:
        ip: The queried address.
        asn: Autonomous system number.
        as_name: Organisation name (carries classifier keywords).
        hostname: Reverse-DNS name of the client.
        provider: The owning provider object.
    """

    ip: str
    asn: int
    as_name: str
    hostname: str
    provider: Provider


class AsnDatabase:
    """Deterministic address allocator and reverse lookup."""

    def __init__(self) -> None:
        self._by_prefix = {p.prefix16: p for p in PROVIDERS}

    # -- allocation -------------------------------------------------------

    def client_ip(self, provider: Provider, index: int, ipv6: bool = False) -> str:
        """The ``index``-th client address of ``provider``.

        IPv4 blocks hold 2^16 hosts; indexes wrap beyond that (the
        generator never allocates that many per provider).
        """
        if ipv6:
            return f"2001:db8:{provider.prefix16:x}::{(index % 0xFFFF) + 1:x}"
        host = index % 65_536
        return f"10.{provider.prefix16}.{host // 256}.{host % 256}"

    # -- lookup ----------------------------------------------------------------

    def lookup(self, ip: str) -> Optional[AsnRecord]:
        """Cymru-style lookup; None for addresses outside any block."""
        addr = ipaddress.ip_address(ip)
        if addr.version == 4:
            octets = ip.split(".")
            if octets[0] != "10":
                return None
            prefix = int(octets[1])
            index = int(octets[2]) * 256 + int(octets[3])
        else:
            if not ip.startswith("2001:db8:"):
                return None
            parts = ip.split(":")
            prefix = int(parts[2], 16)
            index = int(addr) & 0xFFFF
        provider = self._by_prefix.get(prefix)
        if provider is None:
            return None
        return AsnRecord(
            ip=ip,
            asn=provider.asn,
            as_name=provider.name,
            hostname=f"host-{index}.{provider.domain}",
            provider=provider,
        )

"""The end-to-end log study: generate -> parse -> filter -> aggregate.

Produces the three §3.1 artefacts:

* :meth:`LogStudy.table1` — per-server client statistics (Table 1);
* :meth:`LogStudy.figure1` — per-provider min-OWD distributions for
  selected servers (Figure 1, both panels);
* :meth:`LogStudy.figure2` — SNTP/NTP shares per server and per
  provider (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.logs.asndb import AsnDatabase
from repro.logs.classify import (
    classify_protocol_share,
    classify_provider_kind,
    group_by_provider,
)
from repro.logs.generator import GeneratorOptions, TraceGenerator, TRACE_EPOCH_UNIX
from repro.logs.heuristic import HeuristicParams, filter_synchronized_clients
from repro.logs.parser import ClientObservation, parse_trace
from repro.logs.providers import Provider
from repro.logs.servers import TABLE1_SERVERS, ServerDescriptor
from repro.metrics.distributions import iqr, quantile


@dataclass
class ServerSummary:
    """Generated-trace statistics for one server (Table-1 row).

    Attributes mirror the published columns plus the generated counts.
    """

    server_id: str
    stratum: int
    ip_versions: str
    published_clients: int
    published_measurements: int
    generated_clients: int
    generated_measurements: int
    synchronized_clients: int
    sntp_clients: int
    ntp_clients: int

    @property
    def sntp_share(self) -> float:
        """Fraction of classified clients using SNTP."""
        total = self.sntp_clients + self.ntp_clients
        return self.sntp_clients / total if total else 0.0


@dataclass
class ProviderLatency:
    """Min-OWD distribution of one provider's clients at one server."""

    provider: Provider
    category: str
    client_count: int
    min_owds: List[float] = field(default_factory=list)

    @property
    def median(self) -> float:
        """Median per-client minimum OWD (seconds)."""
        return quantile(self.min_owds, 0.5)

    @property
    def interquartile_range(self) -> float:
        """IQR of per-client minimum OWDs (seconds)."""
        return iqr(self.min_owds)


class LogStudy:
    """Runs the full §3.1 pipeline over synthetic traces.

    Args:
        seed: Root seed for all trace generation.
        options: Generation knobs (scale etc.).
        heuristic: Filtering thresholds.
        servers: Subset of Table-1 servers to process (all by default).
    """

    def __init__(
        self,
        seed: int = 0,
        options: GeneratorOptions = GeneratorOptions(),
        heuristic: HeuristicParams = HeuristicParams(),
        servers: Optional[Sequence[ServerDescriptor]] = None,
    ) -> None:
        self.seed = seed
        self.options = options
        self.heuristic = heuristic
        self.servers = list(servers) if servers is not None else list(TABLE1_SERVERS)
        self._asndb = AsnDatabase()
        self._raw: Dict[str, Dict[str, ClientObservation]] = {}
        self._filtered: Dict[str, Dict[str, ClientObservation]] = {}

    # -- pipeline ---------------------------------------------------------------

    def run(self) -> None:
        """Generate and parse every server's trace (idempotent)."""
        if self._raw:
            return
        for server in self.servers:
            generator = TraceGenerator(server, seed=self.seed, options=self.options)
            pcap_bytes = generator.generate()
            observations = parse_trace(pcap_bytes, pivot_unix=TRACE_EPOCH_UNIX)
            self._raw[server.server_id] = observations
            self._filtered[server.server_id] = filter_synchronized_clients(
                observations, self.heuristic
            )

    def observations(self, server_id: str, filtered: bool = True) -> Dict[str, ClientObservation]:
        """Per-client observations for one server."""
        self.run()
        store = self._filtered if filtered else self._raw
        return store[server_id]

    # -- Table 1 -----------------------------------------------------------------

    def table1(self) -> List[ServerSummary]:
        """Per-server summaries (generated counts beside published)."""
        self.run()
        rows = []
        for server in self.servers:
            raw = self._raw[server.server_id]
            filtered = self._filtered[server.server_id]
            sntp, ntp = classify_protocol_share(raw.values())
            rows.append(
                ServerSummary(
                    server_id=server.server_id,
                    stratum=server.stratum,
                    ip_versions="/".join(server.ip_versions),
                    published_clients=server.unique_clients,
                    published_measurements=server.total_measurements,
                    generated_clients=len(raw),
                    generated_measurements=sum(
                        o.total_requests for o in raw.values()
                    ),
                    synchronized_clients=len(filtered),
                    sntp_clients=sntp,
                    ntp_clients=ntp,
                )
            )
        return rows

    # -- Figure 1 -----------------------------------------------------------------

    def figure1(self, server_id: str) -> List[ProviderLatency]:
        """Per-provider min-OWD distributions at one server, ordered by
        SP rank (Figure 1's x-axis)."""
        self.run()
        grouped = group_by_provider(self._filtered[server_id], self._asndb)
        out: List[ProviderLatency] = []
        for provider_name, members in grouped.items():
            provider = members[0][0].provider
            min_owds = [obs.min_owd() for _, obs in members]
            out.append(
                ProviderLatency(
                    provider=provider,
                    category=classify_provider_kind(members[0][0]),
                    client_count=len(members),
                    min_owds=min_owds,
                )
            )
        out.sort(key=lambda pl: pl.provider.sp_id)
        return out

    def category_medians(self, server_id: str) -> Dict[str, float]:
        """Median min-OWD pooled per category (the Figure-1 headline:
        cloud ~40 ms, ISP ~50 ms, broadband ~250 ms, mobile ~550 ms)."""
        pooled: Dict[str, List[float]] = {}
        for pl in self.figure1(server_id):
            pooled.setdefault(pl.category, []).extend(pl.min_owds)
        return {
            category: float(np.median(values))
            for category, values in pooled.items()
            if values
        }

    # -- Figure 2 ------------------------------------------------------------------

    def figure2_per_server(self) -> Dict[str, "tuple[int, int]"]:
        """(sntp, ntp) client counts per server."""
        self.run()
        return {
            server.server_id: classify_protocol_share(
                self._raw[server.server_id].values()
            )
            for server in self.servers
        }

    def figure2_per_provider(self, server_id: str) -> Dict[str, "tuple[int, int]"]:
        """(sntp, ntp) client counts per provider at one server."""
        self.run()
        grouped = group_by_provider(self._raw[server_id], self._asndb)
        return {
            name: classify_protocol_share(obs for _, obs in members)
            for name, members in grouped.items()
        }

    def mobile_sntp_share(self, server_id: str) -> float:
        """Pooled SNTP share over the mobile providers at one server
        (the paper: >95 %)."""
        grouped = group_by_provider(self._raw[server_id], self._asndb)
        sntp = ntp = 0
        for members in grouped.values():
            record = members[0][0]
            if classify_provider_kind(record) != "mobile":
                continue
            s, n = classify_protocol_share(obs for _, obs in members)
            sntp += s
            ntp += n
        total = sntp + ntp
        return sntp / total if total else 0.0

"""repro — a reproduction of "MNTP: Enhancing Time Synchronization for
Mobile Devices" (Mani, Durairajan, Barford, Sommers — IMC 2016).

The package implements the paper's contribution (the MNTP protocol) and
every substrate it depends on — a discrete-event simulator, clock and
oscillator models, a wireless channel, the NTP/SNTP wire protocol with
the full reference filtering pipeline, the laboratory testbed, a 4G
substrate, a pcap-based NTP server log study, and the MNTP tuner.

Quickstart::

    from repro.testbed import run_scenario

    result = run_scenario("mntp_wireless_corrected", seed=1)
    print(result.sntp_error_stats())   # unmodified SNTP
    print(result.mntp_error_stats())   # MNTP
    print(f"{result.improvement_factor():.1f}x better")

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import Mntp, MntpConfig, HintThresholds
from repro.testbed import ExperimentRunner, TestbedOptions, run_scenario, SCENARIOS
from repro.tuner import TraceLogger, MntpEmulator, ParameterSearcher
from repro.logs import LogStudy
from repro.cellular import CellularExperiment

__version__ = "1.0.0"

__all__ = [
    "Mntp",
    "MntpConfig",
    "HintThresholds",
    "ExperimentRunner",
    "TestbedOptions",
    "run_scenario",
    "SCENARIOS",
    "TraceLogger",
    "MntpEmulator",
    "ParameterSearcher",
    "LogStudy",
    "CellularExperiment",
    "__version__",
]

"""Command-line interface.

Exposes the main experiment flows without writing code::

    repro-mntp scenarios                     # list named scenarios
    repro-mntp run mntp_wireless_corrected   # run one scenario
    repro-mntp logstudy --servers AG1 SU1    # the §3.1 pipeline
    repro-mntp cellular                      # Figure 5
    repro-mntp tune --save trace.jsonl       # tuner trace + Table 2
    repro-mntp autotune --target-ms 8        # self-tuning pass
    repro-mntp run X --save run.json         # archive a run
    repro-mntp run X --telemetry out.jsonl   # export run telemetry
    repro-mntp replay run.json               # summarise an archived run
    repro-mntp trace run.json                # inspect archived telemetry
    repro-mntp explain run.json --worst 5    # root-cause offset errors
    repro-mntp metrics run.json              # Prometheus-format metrics
    repro-mntp metrics --merge a.json b.json # merge shard telemetry
    repro-mntp sharddemo --shards 4          # process-pool shard demo
    repro-mntp chaos --smoke                 # fault-matrix survival run
    repro-mntp matrix scenarios --smoke      # spec-file guarantee matrix
    repro-mntp lint src                      # domain static analysis
    repro-mntp profile --smoke               # hot-path profile artifact

Summaries print as tables by default; ``--json`` on ``run``, ``replay``
and ``cellular`` emits machine-readable JSON instead.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

from repro.analysis.cli import add_lint_arguments, run_lint
from repro.cellular import CellularExperiment, CellularOptions
from repro.core.config import TABLE2_CONFIGS
from repro.logs import LogStudy
from repro.logs.generator import GeneratorOptions
from repro.logs.servers import TABLE1_SERVERS, server_by_id
from repro.reporting import render_cdf, render_series, render_table
from repro.testbed import SCENARIOS, run_scenario
from repro.tuner import (
    AutoTuneOptions,
    AutoTuner,
    LoggerOptions,
    ParameterSearcher,
    TraceLogger,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mntp",
        description="Reproduction of 'MNTP: Enhancing Time Synchronization "
        "for Mobile Devices' (IMC 2016).",
    )
    parser.add_argument("--seed", type=int, default=1, help="root RNG seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("scenarios", help="list named experiment scenarios")

    run = sub.add_parser("run", help="run one named scenario")
    run.add_argument("scenario", choices=sorted(SCENARIOS))
    run.add_argument("--save", metavar="PATH",
                     help="archive the result as JSON")
    run.add_argument("--telemetry", metavar="PATH",
                     help="export the run's telemetry as JSONL")
    run.add_argument("--json", action="store_true",
                     help="print the summary as JSON instead of tables")
    run.add_argument("--sample-rate", dest="sample_rate", type=int,
                     default=None, metavar="N",
                     help="keep 1-in-N trace exchanges (deterministic "
                     "keyed sampling; errors/drops/fault windows always "
                     "kept)")
    run.add_argument("--ring-capacity", dest="ring_capacity", type=int,
                     default=None, metavar="SLOTS",
                     help="telemetry ring-buffer slots before a batch "
                     "flush (default 1024)")
    run.add_argument("--watch", action="store_true",
                     help="attach the streaming health monitor and print "
                     "one line per SLO evaluation during the run")
    run.add_argument("--slo", metavar="PATH", default=None,
                     help="SloSpec JSON to judge the run against (attaches "
                     "the health monitor even without --watch; the verdict "
                     "lands in the summary and a violated run exits 1)")

    replay = sub.add_parser("replay", help="summarise an archived run")
    replay.add_argument("path", help="JSON file written by 'run --save'")
    replay.add_argument("--json", action="store_true",
                        help="print the summary as JSON instead of tables")

    trace = sub.add_parser(
        "trace", help="inspect the telemetry of an archived run"
    )
    trace.add_argument("path", help="JSON file written by 'run --save'")
    trace.add_argument("--chrome", metavar="PATH",
                       help="export as Chrome trace-event JSON "
                       "(chrome://tracing / Perfetto)")
    trace.add_argument("--jsonl", metavar="PATH",
                       help="re-export the telemetry as JSONL")
    trace.add_argument("--component", help="show only this component")
    trace.add_argument("--kind", help="show only this record kind")
    trace.add_argument("--limit", type=int, default=20,
                       help="max records to print (default 20)")
    trace.add_argument("--sample-rate", dest="sample_rate", type=int,
                       default=None, metavar="N",
                       help="downsample the archived records to 1-in-N "
                       "exchanges before display/export (same "
                       "deterministic rules as 'run --sample-rate')")

    explain = sub.add_parser(
        "explain",
        help="root-cause each offset error of an archived run (causal "
        "trees from the telemetry trace)",
    )
    explain.add_argument("path", help="JSON file written by 'run --save'")
    explain.add_argument("--worst", type=int, default=5,
                         help="how many worst samples to list (default 5)")
    explain.add_argument("--trace-id", dest="trace_id", metavar="ID",
                         help="print one exchange's causal tree instead")
    explain.add_argument("--window", type=float, default=300.0,
                         help="aggregation window in seconds (default 300)")
    explain.add_argument("--json", action="store_true",
                         help="print the report as JSON instead of text")

    health = sub.add_parser(
        "health",
        help="judge a run against its SLO envelope: replay an archived "
        "run's telemetry through the streaming health monitor and print "
        "the mntp-health-report-v1 verdict",
    )
    health.add_argument(
        "path", nargs="?", default=None,
        help="archived run (JSON written by 'run --save')",
    )
    health.add_argument("--slo", metavar="PATH", default=None,
                        help="SloSpec JSON with the thresholds to judge "
                        "against (defaults otherwise)")
    health.add_argument("--json", action="store_true",
                        help="print the report as JSON instead of text")
    health.add_argument("--smoke", action="store_true",
                        help="CI gate: run the chaos_smoke scenario live "
                        "under the smoke SLO spec and require a full "
                        "degraded->recovered cycle with no violation "
                        "outside a fault window")

    diff = sub.add_parser(
        "diff",
        help="canonical diff of two telemetry documents (snapshots, "
        "shard envelopes, merged shards, or archived runs) with ranked "
        "suspect components for any movement",
    )
    diff.add_argument("a", help="baseline document")
    diff.add_argument("b", help="candidate document")
    diff.add_argument("--json", action="store_true",
                      help="print the mntp-telemetry-diff-v1 document "
                      "instead of text")
    diff.add_argument("--top", type=int, default=5,
                      help="suspects to print in text mode (default 5)")

    metrics = sub.add_parser(
        "metrics", help="metrics of a run in Prometheus text format"
    )
    metrics.add_argument(
        "path", nargs="?", default=None,
        help="archived run (default: simulate mntp_wireless_corrected)",
    )
    metrics.add_argument(
        "--merge", nargs="+", metavar="SHARD", default=None,
        help="merge telemetry shard envelopes / snapshots (order of the "
        "arguments does not affect the result) and print the merged "
        "metrics instead",
    )
    metrics.add_argument(
        "--out", metavar="PATH", default=None,
        help="with --merge: also write the canonical merged telemetry "
        "as JSONL (byte-identical for any shard order)",
    )

    sharddemo = sub.add_parser(
        "sharddemo",
        help="run N independent experiment shards across a process pool "
        "and merge their telemetry (the scale-out demo)",
    )
    sharddemo.add_argument("--shards", type=int, default=2,
                           help="number of shard processes (default 2)")
    sharddemo.add_argument("--exchanges", type=int, default=400,
                           help="total SNTP exchanges across all shards "
                           "(default 400)")
    sharddemo.add_argument("--sample-rate", dest="sample_rate", type=int,
                           default=None, metavar="N",
                           help="per-shard 1-in-N trace sampling")
    sharddemo.add_argument("--ring-capacity", dest="ring_capacity",
                           type=int, default=None, metavar="SLOTS",
                           help="per-shard telemetry ring-buffer size")
    sharddemo.add_argument("--wireless", action="store_true",
                           help="use the wireless channel model")
    sharddemo.add_argument("--serial", action="store_true",
                           help="run shards in-process (no pool)")
    sharddemo.add_argument("--jobs", type=int, default=None,
                           help="pool worker count (default: cpu count)")
    sharddemo.add_argument("--out-dir", dest="out_dir", metavar="DIR",
                           default=None,
                           help="write each shard envelope plus the "
                           "merged JSONL into this directory")

    logstudy = sub.add_parser("logstudy", help="the §3.1 server-log study")
    logstudy.add_argument(
        "--servers", nargs="+", default=["AG1", "JW2", "SU1"],
        help="Table-1 server ids (default: the Figure-1 trio)",
    )
    logstudy.add_argument(
        "--scale", type=float, default=3e-4,
        help="population subsampling factor",
    )
    logstudy.add_argument(
        "--save-pcap-dir", metavar="DIR",
        help="also write each server's synthetic trace as a .pcap file",
    )

    cellular = sub.add_parser(
        "cellular", help="the §3.3 4G phone experiment (Fig 5)"
    )
    cellular.add_argument("--telemetry", metavar="PATH",
                          help="export the run's telemetry as JSONL")
    cellular.add_argument("--json", action="store_true",
                          help="print the summary as JSON instead of tables")

    tune = sub.add_parser("tune", help="log a trace and print Table 2")
    tune.add_argument("--hours", type=float, default=4.0)
    tune.add_argument("--save", metavar="PATH", help="save the trace (JSONL)")
    tune.add_argument("--telemetry", metavar="PATH",
                      help="export search telemetry as JSONL")

    sub.add_parser("calibrate",
                   help="check channel calibration against Figure-4 targets")

    autotune = sub.add_parser("autotune", help="self-tuning pass (§7)")
    autotune.add_argument("--hours", type=float, default=4.0)
    autotune.add_argument("--target-ms", type=float, default=10.0)
    autotune.add_argument("--budget-per-hour", type=float, default=None)
    autotune.add_argument("--telemetry", metavar="PATH",
                          help="export tuning telemetry as JSONL")

    matrix = sub.add_parser(
        "matrix",
        help="execute a directory of scenario-spec JSON files across a "
        "fault-tolerant worker pool and print the aggregated "
        "mntp-matrix-report-v1 verdict (see docs/SCENARIOS.md)",
    )
    matrix.add_argument("directory",
                        help="directory of ScenarioSpec JSON files "
                        "(e.g. scenarios/)")
    matrix.add_argument("--jobs", type=int, default=2,
                        help="worker processes running concurrently "
                        "(default 2; the report is byte-identical for "
                        "any value)")
    matrix.add_argument("--timeout-s", dest="timeout_s", type=float,
                        default=600.0,
                        help="per-spec deadline in wall seconds; a hung "
                        "worker is terminated and its spec marked "
                        "timeout (default 600)")
    matrix.add_argument("--retries", type=int, default=1,
                        help="extra attempts after a crashed/timeout/"
                        "error outcome (default 1)")
    matrix.add_argument("--smoke", action="store_true",
                        help="only run specs tagged 'smoke' (the CI gate "
                        "tier)")
    matrix.add_argument("--serial", action="store_true",
                        help="run specs in-process instead of worker "
                        "processes (degraded mode: timeouts and crash "
                        "isolation unenforced)")
    matrix.add_argument("--save", metavar="PATH",
                        help="write the aggregated report JSON to a file")
    matrix.add_argument("--json", action="store_true",
                        help="print the report as JSON instead of the "
                        "table")

    chaos = sub.add_parser(
        "chaos",
        help="run the fault-injection matrix: plain SNTP vs hardened "
        "MNTP, with a per-episode survival report (see "
        "docs/ROBUSTNESS.md)",
    )
    chaos.add_argument("--smoke", action="store_true",
                       help="reduced matrix + duration (the CI gate)")
    chaos.add_argument("--faults", metavar="PATH",
                       help="load a custom FaultSchedule JSON instead of "
                       "the default matrix")
    chaos.add_argument("--duration", type=float, default=None,
                       help="virtual seconds to simulate (default matches "
                       "the matrix)")
    chaos.add_argument("--threshold-ms", dest="threshold_ms", type=float,
                       default=25.0,
                       help="recovery bar on |error| (default 25 ms)")
    chaos.add_argument("--grace", type=float, default=None,
                       help="settling seconds after an episode before "
                       "judging recovery (default 90, smoke 60)")
    chaos.add_argument("--save", metavar="PATH",
                       help="write the survival report JSON to a file")
    chaos.add_argument("--json", action="store_true",
                       help="print the full report as JSON instead of "
                       "the table")

    lint = sub.add_parser(
        "lint",
        help="run the repro static-analysis rules (determinism, time-unit "
        "safety); see docs/STATIC_ANALYSIS.md",
    )
    add_lint_arguments(lint)

    from repro.analysis.profile import (
        DEFAULT_PROFILE_PATH,
        DEFAULT_TRAJECTORY,
        SMOKE_SCENARIO,
    )

    profile = sub.add_parser(
        "profile",
        help="run a scenario under cProfile and write a hot-path "
        "artifact that 'lint --profile' ranks findings by",
    )
    profile.add_argument(
        "--scenario", choices=sorted(SCENARIOS), default=None,
        help=f"scenario to profile (default: {SMOKE_SCENARIO})",
    )
    profile.add_argument(
        "--duration", type=float, default=None,
        help="virtual seconds to simulate (default: the scenario's own "
        "duration, or the reduced smoke duration with --smoke)",
    )
    profile.add_argument(
        "--smoke", action="store_true",
        help="reduced duration for the CI gate",
    )
    profile.add_argument(
        "--out", metavar="PATH", default=DEFAULT_PROFILE_PATH,
        help=f"artifact path (default: {DEFAULT_PROFILE_PATH})",
    )
    profile.add_argument(
        "--top", type=int, default=10,
        help="rows printed from the cumtime ranking (default 10)",
    )
    profile.add_argument(
        "--trajectory", metavar="PATH", default=DEFAULT_TRAJECTORY,
        help=f"bench trajectory to append to (default: {DEFAULT_TRAJECTORY})",
    )
    profile.add_argument(
        "--no-trajectory", action="store_true",
        help="skip the trajectory append",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    command = args.command
    if command == "scenarios":
        return _cmd_scenarios()
    if command == "run":
        return _cmd_run(args)
    if command == "replay":
        return _cmd_replay(args)
    if command == "trace":
        return _cmd_trace(args)
    if command == "explain":
        return _cmd_explain(args)
    if command == "health":
        return _cmd_health(args)
    if command == "diff":
        return _cmd_diff(args)
    if command == "metrics":
        return _cmd_metrics(args)
    if command == "sharddemo":
        return _cmd_sharddemo(args)
    if command == "logstudy":
        return _cmd_logstudy(args)
    if command == "cellular":
        return _cmd_cellular(args)
    if command == "tune":
        return _cmd_tune(args)
    if command == "autotune":
        return _cmd_autotune(args)
    if command == "calibrate":
        return _cmd_calibrate(args)
    if command == "chaos":
        return _cmd_chaos(args)
    if command == "matrix":
        return _cmd_matrix(args)
    if command == "lint":
        return run_lint(args)
    if command == "profile":
        from repro.analysis.profile import run_profile_command

        return run_profile_command(args)
    return 2  # pragma: no cover - argparse enforces choices


def _cmd_scenarios() -> int:
    rows = [
        [name, f"{s.duration / 3600:.1f} h", s.description]
        for name, s in sorted(SCENARIOS.items())
    ]
    print(render_table(["scenario", "duration", "description"], rows))
    return 0


def _cmd_run(args) -> int:
    watch = getattr(args, "watch", False)
    health_spec = None
    if getattr(args, "slo", None):
        # --slo attaches the monitor on its own; --watch only adds the
        # per-evaluation lines.
        health_spec = _load_slo_spec(args.slo)
        if health_spec is None:
            return 2
    try:
        result = run_scenario(
            args.scenario,
            seed=args.seed,
            sample_rate=getattr(args, "sample_rate", None),
            ring_capacity=getattr(args, "ring_capacity", None),
            health_spec=health_spec,
            on_health=_print_health_line if watch else None,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if getattr(args, "save", None):
        from repro.testbed.persistence import save_result

        with open(args.save, "w") as f:
            save_result(result, f)
        print(f"result archived to {args.save}")
    if getattr(args, "telemetry", None):
        _write_telemetry(result.telemetry, args.telemetry)
    # A monitored run that ends violated is a failed run: rc 1 so
    # scripted callers (and CI) see the verdict without parsing output.
    rc = 1 if (result.health is not None
               and result.health["verdict"] == "violated") else 0
    if getattr(args, "json", False):
        print(json.dumps(_summary_dict(result), sort_keys=True, indent=2))
        return rc
    if result.health is not None:
        print(f"health verdict: {result.health['verdict']} "
              f"(final state: {result.health['state']})")
    _summarise(result)
    return rc


def _load_slo_spec(path: str):
    """Parse a SloSpec JSON file (None + stderr message on error)."""
    from repro.obs import SloSpec

    try:
        with open(path) as f:
            return SloSpec.from_json(f.read())
    except (OSError, TypeError, ValueError) as exc:
        print(f"cannot load {path}: {exc}", file=sys.stderr)
        return None


def _print_health_line(row: Dict[str, Any]) -> None:
    """One ``run --watch`` line per periodic SLO evaluation."""
    signals = row["signals"]

    def fmt(key: str, unit: str) -> str:
        value = signals.get(key)
        return "n/a" if value is None else f"{value:.2f}{unit}"

    fault = "  [fault window]" if row["in_fault_window"] else ""
    print(f"health t={row['t']:9.2f}  {row['state']:<9} "
          f"p99|err|={fmt('p99_abs_error_ms', 'ms')} "
          f"drop={fmt('drop_rate_ratio', '')} "
          f"starvation={fmt('starvation_s', 's')} "
          f"rate={fmt('exchange_rate_per_s', '/s')}{fault}")


def _cmd_replay(args) -> int:
    from repro.testbed.persistence import load_result

    try:
        with open(args.path) as f:
            result = load_result(f)
    except (OSError, ValueError) as exc:
        print(f"cannot load {args.path}: {exc}", file=sys.stderr)
        return 2
    if getattr(args, "json", False):
        print(json.dumps(_summary_dict(result), sort_keys=True, indent=2))
        return 0
    return _summarise(result)


def _write_telemetry(snapshot, path: str) -> None:
    from repro.obs import write_jsonl

    if snapshot is None:
        print("no telemetry captured for this run", file=sys.stderr)
        return
    with open(path, "w") as f:
        lines = write_jsonl(snapshot, f)
    print(f"telemetry ({lines} lines) written to {path}")


def _stats_dict(stats) -> Dict[str, Any]:
    return {
        "count": stats.count,
        "mean_abs_ms": stats.mean_abs * 1000,
        "std_abs_ms": stats.std_abs * 1000,
        "max_abs_ms": stats.max_abs * 1000,
        "rmse_ms": stats.rmse * 1000,
    }


def _summary_dict(result) -> Dict[str, Any]:
    from repro.obs import snapshot_metric_names, snapshot_span_kinds

    out: Dict[str, Any] = {
        "duration": result.duration,
        "sntp": _stats_dict(result.sntp_error_stats()),
        "sntp_failures": result.sntp_failures,
    }
    if result.mntp_reports:
        out["mntp"] = _stats_dict(result.mntp_error_stats())
        out["mntp_reports"] = len(result.mntp_reports)
        out["improvement_factor"] = result.improvement_factor()
    if result.telemetry is not None:
        out["telemetry"] = {
            "metric_names": snapshot_metric_names(result.telemetry),
            "span_kinds": snapshot_span_kinds(result.telemetry),
            "record_count": len(result.telemetry.get("records", [])),
        }
    if result.health is not None:
        out["health"] = result.health
    return out


def _summarise(result) -> int:
    sntp = result.sntp_error_stats()
    rows = [["SNTP", sntp.count, f"{sntp.mean_abs * 1000:.1f}",
             f"{sntp.max_abs * 1000:.1f}"]]
    if result.mntp_reports:
        mntp = result.mntp_error_stats()
        rows.append(["MNTP", mntp.count, f"{mntp.mean_abs * 1000:.1f}",
                     f"{mntp.max_abs * 1000:.1f}"])
    print(render_table(["series", "n", "mean |err| (ms)", "max (ms)"], rows))
    if result.sntp:
        print(render_series([p.offset for p in result.sntp], label="SNTP"))
    if result.mntp_reports:
        print(render_series(
            [p.offset for p in result.mntp_accepted()], label="MNTP"
        ))
        print(f"improvement: {result.improvement_factor():.1f}x")
    return 0


def _load_archived_telemetry(path: str):
    """Telemetry snapshot out of an archived run (None + message if absent)."""
    from repro.testbed.persistence import load_result

    try:
        with open(path) as f:
            result = load_result(f)
    except (OSError, ValueError) as exc:
        print(f"cannot load {path}: {exc}", file=sys.stderr)
        return None
    if result.telemetry is None:
        print(f"{path} has no telemetry payload (saved by an older "
              "version?)", file=sys.stderr)
        return None
    return result.telemetry


def _cmd_trace(args) -> int:
    from repro.obs import SPAN_COMPONENT, write_chrome_trace, write_jsonl

    snapshot = _load_archived_telemetry(args.path)
    if snapshot is None:
        return 2
    records = snapshot.get("records", [])
    rate = getattr(args, "sample_rate", None)
    if rate is not None:
        from repro.obs import TraceSampler

        try:
            sampler = TraceSampler(rate)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        records = [
            r for r in records
            if sampler.keep_record(r.get("kind", ""), r.get("data", {}))
        ]
        snapshot = dict(snapshot)
        snapshot["records"] = records
        print(f"sampled 1-in-{sampler.rate}: kept {sampler.kept}, "
              f"dropped {sampler.dropped}")
    if getattr(args, "chrome", None):
        with open(args.chrome, "w") as f:
            n = write_chrome_trace(snapshot, f)
        print(f"chrome trace ({n} events) written to {args.chrome}")
    if getattr(args, "jsonl", None):
        with open(args.jsonl, "w") as f:
            n = write_jsonl(snapshot, f)
        print(f"telemetry ({n} lines) written to {args.jsonl}")

    spans = [r for r in records if r.get("component") == SPAN_COMPONENT]
    by_kind: Dict[str, List[float]] = {}
    for s in spans:
        by_kind.setdefault(s["kind"], []).append(float(s["data"].get("dur", 0.0)))
    rows = [
        [kind, len(durs), f"{sum(durs):.1f}", f"{max(durs):.1f}"]
        for kind, durs in sorted(by_kind.items())
    ]
    print(render_table(["span", "n", "total (s, sim)", "max (s, sim)"], rows))

    shown = 0
    for r in records:
        if args.component and r.get("component") != args.component:
            continue
        if args.kind and r.get("kind") != args.kind:
            continue
        if shown >= args.limit:
            break
        data = " ".join(f"{k}={v}" for k, v in sorted(r.get("data", {}).items()))
        print(f"t={r['t']:.3f} {r['component']}/{r['kind']} {data}")
        shown += 1
    total = sum(
        1 for r in records
        if (not args.component or r.get("component") == args.component)
        and (not args.kind or r.get("kind") == args.kind)
    )
    if total > shown:
        print(f"... {total - shown} more records (raise --limit)")
    return 0


def _cmd_explain(args) -> int:
    from repro.obs import assemble_exchanges, decompose, explain_run, render_tree
    from repro.testbed.persistence import load_result

    try:
        with open(args.path) as f:
            result = load_result(f)
    except (OSError, ValueError) as exc:
        print(f"cannot load {args.path}: {exc}", file=sys.stderr)
        return 2
    if result.telemetry is None:
        print(f"{args.path} has no telemetry payload (saved by an older "
              "version?)", file=sys.stderr)
        return 2
    samples = result.offset_samples()
    if getattr(args, "trace_id", None):
        matches = [
            e for e in assemble_exchanges(result.telemetry)
            if e.trace_id == args.trace_id
        ]
        if not matches:
            print(f"no exchange with trace id {args.trace_id!r}",
                  file=sys.stderr)
            return 1
        truths = {
            (p.time, p.offset): p.truth for p in samples if p.truth == p.truth
        }
        for exchange in matches:
            truth = (
                truths.get((exchange.t1, exchange.offset))
                if exchange.offset is not None else None
            )
            print(render_tree(exchange, decompose(exchange, truth)))
        return 0
    try:
        report = explain_run(
            result.telemetry, samples=samples, window_s=args.window
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if getattr(args, "json", False):
        print(json.dumps(
            report.to_dict(worst_n=args.worst), sort_keys=True, indent=2
        ))
        return 0
    print(report.render_text(worst_n=args.worst))
    return 0


def _cmd_health(args) -> int:
    from repro.obs import render_health_text

    spec = None
    if getattr(args, "slo", None):
        spec = _load_slo_spec(args.slo)
        if spec is None:
            return 2
    if getattr(args, "smoke", False):
        return _health_smoke(args, spec)
    if args.path is None:
        print("give an archived run path or --smoke", file=sys.stderr)
        return 2
    from repro.obs import replay_health
    from repro.testbed.persistence import load_result

    try:
        with open(args.path) as f:
            result = load_result(f)
    except (OSError, ValueError) as exc:
        print(f"cannot load {args.path}: {exc}", file=sys.stderr)
        return 2
    if result.telemetry is None:
        print(f"{args.path} has no telemetry payload (saved by an older "
              "version?)", file=sys.stderr)
        return 2
    monitor = replay_health(
        result.telemetry, samples=result.offset_samples(), spec=spec
    )
    report = monitor.report()
    if getattr(args, "json", False):
        print(json.dumps(report, sort_keys=True, indent=2))
    else:
        print(render_health_text(report))
    return 1 if report["verdict"] == "violated" else 0


def _health_smoke(args, spec) -> int:
    """The CI gate: a live fault-matrix run must cycle back to healthy."""
    from repro.obs import recovered_transitions, render_health_text, smoke_spec

    result = run_scenario(
        "chaos_smoke", seed=args.seed,
        health_spec=spec if spec is not None else smoke_spec(),
    )
    report = result.health
    assert report is not None
    if getattr(args, "json", False):
        print(json.dumps(report, sort_keys=True, indent=2))
    else:
        print(render_health_text(report))
    recovered = recovered_transitions(report)
    ok = report["verdict"] != "violated" and recovered >= 1
    print(f"health smoke: verdict={report['verdict']} "
          f"recovered_transitions={recovered} -> "
          f"{'OK' if ok else 'FAIL'}")
    return 0 if ok else 1


def _load_diff_document(path: str):
    """A diffable document from JSON or JSONL (None + stderr on error)."""
    from repro.obs import load_jsonl

    try:
        with open(path) as f:
            text = f.read()
    except OSError as exc:
        print(f"cannot load {path}: {exc}", file=sys.stderr)
        return None
    try:
        return json.loads(text)
    except ValueError:
        pass
    import io

    try:
        return load_jsonl(io.StringIO(text))
    except ValueError as exc:
        print(f"cannot load {path}: {exc}", file=sys.stderr)
        return None


def _cmd_diff(args) -> int:
    from repro.obs import coerce_snapshot, diff_snapshots, render_diff_text

    doc_a = _load_diff_document(args.a)
    if doc_a is None:
        return 2
    doc_b = _load_diff_document(args.b)
    if doc_b is None:
        return 2
    try:
        snap_a, samples_a = coerce_snapshot(doc_a)
        snap_b, samples_b = coerce_snapshot(doc_b)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    diff = diff_snapshots(
        snap_a, snap_b, samples_a=samples_a, samples_b=samples_b
    )
    if getattr(args, "json", False):
        print(json.dumps(diff, sort_keys=True, indent=2))
    else:
        print(render_diff_text(diff, top=args.top))
    return 0 if diff["identical"] else 1


def _cmd_metrics(args) -> int:
    from repro.obs import render_prometheus

    if getattr(args, "merge", None):
        if args.path is not None:
            print("give either a run path or --merge, not both",
                  file=sys.stderr)
            return 2
        return _merge_shard_files(args.merge, args.out)
    if getattr(args, "out", None):
        print("--out only applies with --merge", file=sys.stderr)
        return 2
    if args.path is not None:
        snapshot = _load_archived_telemetry(args.path)
        if snapshot is None:
            return 2
    else:
        result = run_scenario("mntp_wireless_corrected", seed=args.seed)
        snapshot = result.telemetry
    sys.stdout.write(render_prometheus(snapshot))
    return 0


def _merge_shard_files(paths: List[str], out: Optional[str]) -> int:
    """Merge shard envelope/snapshot files; print Prometheus metrics.

    With ``out`` also streams the canonical merged JSONL there — the
    bytes are identical for any permutation of ``paths``.
    """
    from repro.obs import merge_documents, render_prometheus, write_merged_jsonl

    documents = []
    for path in paths:
        try:
            with open(path) as f:
                documents.append(json.load(f))
        except (OSError, ValueError) as exc:
            print(f"cannot load {path}: {exc}", file=sys.stderr)
            return 2
    try:
        merged = merge_documents(documents)
        if out:
            with open(out, "w") as f:
                lines = write_merged_jsonl(documents, f)
            print(f"merged telemetry ({lines} lines) written to {out}",
                  file=sys.stderr)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    sys.stdout.write(render_prometheus(merged))
    return 0


def _cmd_sharddemo(args) -> int:
    from repro.obs import merge_documents, run_demo_shards, write_merged_jsonl

    if args.shards < 1 or args.exchanges < args.shards:
        print("need --shards >= 1 and --exchanges >= --shards",
              file=sys.stderr)
        return 2
    per_shard = args.exchanges // args.shards
    try:
        envelopes = run_demo_shards(
            shards=args.shards,
            exchanges_per_shard=per_shard,
            seed=args.seed,
            sample_rate=args.sample_rate,
            ring_capacity=args.ring_capacity,
            wireless=args.wireless,
            jobs=args.jobs,
            serial=args.serial,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    rows = [
        [e["shard"], e["meta"]["seed"], f"{e['meta']['duration_s']:.0f}",
         e["meta"]["exchanges"], e["meta"]["records"]]
        for e in envelopes
    ]
    print(render_table(
        ["shard", "seed", "sim (s)", "exchanges", "records"], rows,
    ))
    merged = merge_documents(envelopes)
    exchanges = sum(e["meta"]["exchanges"] for e in envelopes)
    print(f"merged: {len(envelopes)} shards, {exchanges} exchanges, "
          f"{len(merged['records'])} records, "
          f"{len(merged['metrics'])} metric series")
    sampling = merged.get("sampling")
    if sampling is not None:
        print(f"sampling 1-in-{sampling['rate']}: kept {sampling['kept']}, "
              f"dropped {sampling['dropped']}")
    if getattr(args, "out_dir", None):
        import os

        os.makedirs(args.out_dir, exist_ok=True)
        for envelope in envelopes:
            path = os.path.join(args.out_dir, f"{envelope['shard']}.json")
            with open(path, "w") as f:
                json.dump(envelope, f, sort_keys=True, indent=2)
                f.write("\n")
        merged_path = os.path.join(args.out_dir, "merged.jsonl")
        with open(merged_path, "w") as f:
            lines = write_merged_jsonl(envelopes, f)
        print(f"wrote {len(envelopes)} shard envelopes and "
              f"{merged_path} ({lines} lines) under {args.out_dir}")
    return 0


def _cmd_logstudy(args) -> int:
    try:
        servers = [server_by_id(s) for s in args.servers]
    except KeyError as exc:
        known = ", ".join(s.server_id for s in TABLE1_SERVERS)
        print(f"unknown server {exc}; known: {known}", file=sys.stderr)
        return 2
    study = LogStudy(
        seed=args.seed,
        options=GeneratorOptions(scale=args.scale),
        servers=servers,
    )
    study.run()
    if getattr(args, "save_pcap_dir", None):
        import os

        from repro.logs.generator import TraceGenerator

        os.makedirs(args.save_pcap_dir, exist_ok=True)
        for server in servers:
            generator = TraceGenerator(
                server, seed=args.seed,
                options=GeneratorOptions(scale=args.scale),
            )
            path = os.path.join(args.save_pcap_dir,
                                f"{server.server_id}.pcap")
            with open(path, "wb") as f:
                generator.generate(fileobj=f)
            print(f"wrote {path}")
    rows = [
        [r.server_id, r.stratum, r.ip_versions, f"{r.published_clients:,}",
         r.generated_clients, r.synchronized_clients,
         f"{r.sntp_share * 100:.0f}%"]
        for r in study.table1()
    ]
    print(render_table(
        ["server", "stratum", "ipv", "published", "generated", "synced",
         "SNTP"], rows,
    ))
    for server in args.servers:
        medians = study.category_medians(server)
        line = "  ".join(
            f"{cat}={value * 1000:.0f}ms" for cat, value in sorted(medians.items())
        )
        print(f"{server} category medians: {line}")
    return 0


def _cmd_cellular(args) -> int:
    result = CellularExperiment(seed=args.seed, options=CellularOptions()).run()
    if getattr(args, "telemetry", None):
        _write_telemetry(result.telemetry, args.telemetry)
    stats = result.stats()
    if getattr(args, "json", False):
        print(json.dumps(
            {
                "duration": result.duration,
                "offsets": _stats_dict(stats),
                "failures": result.failures,
                "promotions": result.promotions,
                "gps_fixes": result.gps_fixes,
            },
            sort_keys=True, indent=2,
        ))
        return 0
    print(f"samples={stats.count} mean={stats.mean_abs * 1000:.1f}ms "
          f"std={stats.std_abs * 1000:.1f}ms max={stats.max_abs * 1000:.1f}ms "
          f"promotions={result.promotions}")
    print(render_cdf([p.offset for p in result.offsets], label="offset CDF"))
    return 0


def _cmd_tune(args) -> int:
    options = LoggerOptions(duration=args.hours * 3600.0)
    trace = TraceLogger(seed=args.seed, options=options).run()
    if args.save:
        with open(args.save, "w") as f:
            trace.save(f)
        print(f"trace saved to {args.save}")
    from repro.obs import Telemetry

    telemetry = (
        Telemetry.standalone() if getattr(args, "telemetry", None) else None
    )
    searcher = ParameterSearcher(trace, telemetry=telemetry)
    rows = []
    for num, config in TABLE2_CONFIGS.items():
        result = searcher.evaluate(config)
        wp, ww, rw, rp, rmse_ms, requests = result.row()
        rows.append([num, f"{wp:.0f}", f"{ww:.3f}", f"{rw:.0f}",
                     f"{rmse_ms:.2f}", requests])
    print(render_table(
        ["config", "warmup (min)", "warmup wait (min)", "regular wait (min)",
         "RMSE (ms)", "requests"], rows,
    ))
    if telemetry is not None:
        _write_telemetry(telemetry.snapshot(), args.telemetry)
    return 0


def _cmd_calibrate(args) -> int:
    from repro.testbed.calibration import run_calibration

    report = run_calibration(seed=args.seed)
    print(render_table(
        ["target", "paper (ms)", "measured (ms)", "band (ms)", "verdict"],
        report.rows(),
    ))
    if report.ok:
        print("calibration OK")
        return 0
    print("calibration OUT OF BAND — see DESIGN.md §2 before trusting "
          "figure benches")
    return 1


def _cmd_matrix(args) -> int:
    from repro.testbed.matrix import (
        MatrixOptions,
        render_matrix_text,
        report_to_json,
        run_matrix,
    )

    if not os.path.isdir(args.directory):
        print(f"{args.directory} is not a directory", file=sys.stderr)
        return 2
    try:
        options = MatrixOptions(
            seed=args.seed,
            jobs=args.jobs,
            timeout_s=args.timeout_s,
            retries=args.retries,
            tags=("smoke",) if args.smoke else (),
            serial=args.serial,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    report = run_matrix(args.directory, options)
    if not report["specs"]:
        print(f"no scenario specs selected in {args.directory}",
              file=sys.stderr)
        return 2
    if getattr(args, "save", None):
        with open(args.save, "w") as f:
            f.write(report_to_json(report))
        if not args.json:
            print(f"matrix report written to {args.save}")
    if args.json:
        print(report_to_json(report), end="")
    else:
        print(render_matrix_text(report))
    return 0 if report["verdict"]["ok"] else 1


def _cmd_chaos(args) -> int:
    from repro.faults import ChaosOptions, FaultSchedule, run_chaos
    from repro.faults.chaos import report_to_json

    schedule = None
    if getattr(args, "faults", None):
        try:
            with open(args.faults) as f:
                schedule = FaultSchedule.from_json(f.read())
        except (OSError, ValueError) as exc:
            print(f"cannot load {args.faults}: {exc}", file=sys.stderr)
            return 2
    grace = args.grace
    if grace is None:
        grace = 60.0 if args.smoke else 90.0
    report = run_chaos(
        ChaosOptions(
            seed=args.seed,
            duration=args.duration,
            threshold_s=args.threshold_ms / 1e3,
            grace_s=grace,
            smoke=args.smoke,
        ),
        schedule=schedule,
    )
    text = report_to_json(report)
    if getattr(args, "save", None):
        with open(args.save, "w") as f:
            f.write(text + "\n")
        print(f"survival report written to {args.save}", file=sys.stderr)
    survived = report["verdict"]["mntp_survived"]
    if getattr(args, "json", False):
        print(text)
        return 0 if survived else 1

    def cell(side: Dict[str, Any]) -> "tuple[str, str]":
        max_err = side["max_abs_error_s"]
        shown = "n/a" if max_err is None else f"{max_err * 1e3:.1f}"
        return ("ok" if side["recovered"] else "FAIL"), shown

    rows = []
    for e in report["episodes"]:
        m_verdict, m_err = cell(e["mntp"])
        s_verdict, s_err = cell(e["sntp"])
        rows.append([
            e["kind"], e["target"], f"{e['start']:.0f}-{e['end']:.0f}",
            m_verdict, m_err, s_verdict, s_err,
        ])
    print(render_table(
        ["fault", "target", "t (s)", "mntp", "max|err| (ms)",
         "sntp", "max|err| (ms)"], rows,
    ))
    verdict = report["verdict"]
    print(f"hardened MNTP survived: {verdict['mntp_survived']}  "
          f"(steps detected: {report['mntp']['step_detections']}, "
          f"failovers: {report['mntp']['queries']['failovers']}, "
          f"wasted queries: {report['mntp']['queries_wasted']})")
    print(f"plain SNTP survived:    {verdict['sntp_survived']}  "
          f"(failures: {report['sntp']['failures']}, "
          f"wasted queries: {report['sntp']['queries_wasted']})")
    return 0 if survived else 1


def _cmd_autotune(args) -> int:
    options = LoggerOptions(duration=args.hours * 3600.0)
    trace = TraceLogger(seed=args.seed, options=options).run()
    from repro.obs import Telemetry

    telemetry = (
        Telemetry.standalone() if getattr(args, "telemetry", None) else None
    )
    tuner = AutoTuner(
        options=AutoTuneOptions(
            target_rmse_ms=args.target_ms,
            max_requests_per_hour=args.budget_per_hour,
        ),
        telemetry=telemetry,
    )
    outcome = tuner.tune(trace)
    if telemetry is not None:
        _write_telemetry(telemetry.snapshot(), args.telemetry)
    if outcome.recommended is None:
        print("no viable configuration under the given constraints")
        return 1
    c = outcome.recommended
    status = "meets target" if outcome.met_target else "best affordable"
    print(f"recommended ({status}): warmup={c.warmup_period / 60:.0f}min "
          f"warmupWait={c.warmup_wait_time / 60:.3f}min "
          f"regularWait={c.regular_wait_time / 60:.0f}min "
          f"reset={c.reset_period / 60:.0f}min")
    rows = [
        [f"{r.config.warmup_period / 60:.0f}/{r.config.warmup_wait_time / 60:.2f}"
         f"/{r.config.regular_wait_time / 60:.0f}",
         r.requests, f"{r.rmse_ms:.2f}"]
        for r in outcome.pareto
    ]
    print(render_table(["pareto config (min)", "requests", "RMSE (ms)"], rows))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Cross-traffic generator.

Reproduces the monitor node's first degradation strategy: occupying the
WAP's uplink "intermittently by downloading a large file at random
intervals".  While a download is active the channel occupancy rises,
which the effects model translates into queueing delay and loss for
everything else sharing the hop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simcore.simulator import Simulator


@dataclass
class CrossTrafficParams:
    """Download workload shape.

    Attributes:
        mean_gap_s: Mean idle gap between downloads (exponential).
        mean_duration_s: Mean download duration (exponential).
        occupancy_during_download: Channel utilisation while downloading,
            in [0, 1).
        occupancy_idle: Background utilisation with no download.
    """

    mean_gap_s: float = 90.0
    mean_duration_s: float = 30.0
    occupancy_during_download: float = 0.80
    occupancy_idle: float = 0.10


class CrossTrafficGenerator:
    """Alternating idle/download process with tunable frequency.

    The monitor node tunes ``frequency_scale`` at runtime: >1 shortens
    gaps (more hostile channel), <1 lengthens them.
    """

    def __init__(
        self,
        sim: Simulator,
        params: CrossTrafficParams = CrossTrafficParams(),
        stream_name: str = "crosstraffic",
    ) -> None:
        self._sim = sim
        self.params = params
        self._rng = sim.rng.stream(stream_name)
        self.frequency_scale = 1.0
        self.downloading = False
        self._running = False
        self.downloads_started = 0

    def start(self) -> None:
        """Begin the idle/download alternation."""
        if self._running:
            return
        self._running = True
        self._schedule_next_download()

    def stop(self) -> None:
        """Cease starting new downloads (an active one finishes)."""
        self._running = False

    def occupancy(self) -> float:
        """Current channel utilisation contributed by cross-traffic."""
        if self.downloading:
            return self.params.occupancy_during_download
        return self.params.occupancy_idle

    def set_frequency_scale(self, scale: float) -> None:
        """Monitor-node control: scale download frequency (clamped > 0)."""
        self.frequency_scale = max(0.05, float(scale))

    # -- internal scheduling -------------------------------------------------

    def _schedule_next_download(self) -> None:
        if not self._running:
            return
        gap = float(
            self._rng.exponential(self.params.mean_gap_s / self.frequency_scale)
        )
        self._sim.call_after(gap, self._begin_download, label="xtraffic:begin")

    def _begin_download(self) -> None:
        if not self._running:
            return
        self.downloading = True
        self.downloads_started += 1
        self._sim.trace.emit(self._sim.now, "crosstraffic", "download_start")
        duration = float(self._rng.exponential(self.params.mean_duration_s))
        self._sim.call_after(duration, self._end_download, label="xtraffic:end")

    def _end_download(self) -> None:
        self.downloading = False
        self._sim.trace.emit(self._sim.now, "crosstraffic", "download_end")
        self._schedule_next_download()

"""Wireless channel substrate.

Simulates the 802.11 last hop of the paper's testbed: an RSSI process
(path loss + slow shadowing + fast fading + interference episodes), a
noise-floor process, cross-traffic channel occupancy, and the mapping
from channel state to per-packet loss and extra delay.

MNTP consumes only the *hints* (RSSI, noise, SNR margin) and the
resulting packet timings, so reproducing the joint statistics of
(hints, loss, delay) reproduces the paper's operating conditions.
"""

from repro.wireless.hints import WirelessHints, HintProvider
from repro.wireless.channel import WirelessChannel, ChannelParams
from repro.wireless.crosstraffic import CrossTrafficGenerator, CrossTrafficParams
from repro.wireless.wap import AccessPoint
from repro.wireless.effects import ChannelEffects, EffectsParams

__all__ = [
    "WirelessHints",
    "HintProvider",
    "WirelessChannel",
    "ChannelParams",
    "CrossTrafficGenerator",
    "CrossTrafficParams",
    "AccessPoint",
    "ChannelEffects",
    "EffectsParams",
]

"""The wireless access point.

In the paper's testbed the WAP is a laptop turned into a hotspot that
"has the ability to programmatically increase or decrease the
transmission power ... upon receiving commands from the monitor node".
Here the AP owns the channel and exposes that command interface.
"""

from __future__ import annotations

from repro.wireless.channel import WirelessChannel


class AccessPoint:
    """Programmable WAP wrapping a :class:`WirelessChannel`.

    Args:
        channel: The channel between this AP and its associated client.
        min_tx_dbm / max_tx_dbm: Legal transmit power range.
        step_db: Granularity of power adjustments.
    """

    def __init__(
        self,
        channel: WirelessChannel,
        min_tx_dbm: float = -30.0,
        max_tx_dbm: float = 0.0,
        step_db: float = 3.0,
    ) -> None:
        if min_tx_dbm >= max_tx_dbm:
            raise ValueError("min tx power must be below max")
        self.channel = channel
        self.min_tx_dbm = float(min_tx_dbm)
        self.max_tx_dbm = float(max_tx_dbm)
        self.step_db = float(step_db)
        self.commands_received = 0

    @property
    def tx_power_dbm(self) -> float:
        """Current transmit power."""
        return self.channel.tx_power_dbm

    def set_tx_power(self, dbm: float) -> float:
        """Set transmit power, clamped to the legal range; returns the
        applied value."""
        self.commands_received += 1
        applied = min(self.max_tx_dbm, max(self.min_tx_dbm, float(dbm)))
        self.channel.set_tx_power(applied)
        return applied

    def increase_tx_power(self) -> float:
        """Raise power one step (monitor-node command)."""
        return self.set_tx_power(self.tx_power_dbm + self.step_db)

    def decrease_tx_power(self) -> float:
        """Lower power one step (monitor-node command)."""
        return self.set_tx_power(self.tx_power_dbm - self.step_db)

"""Wireless hints: the cross-layer information MNTP reads.

The paper obtains RSSI and noise from the wireless adaptor (``airport``
on macOS, ``iwconfig`` on Linux) and derives the SNR margin as
``RSSI - noise``.  :class:`WirelessHints` is that triple;
:class:`HintProvider` is the minimal protocol a device must expose for
MNTP to run — the paper's "only support needed from the wireless host".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol


@dataclass(frozen=True)
class WirelessHints:
    """A point-in-time reading of the wireless adaptor.

    Attributes:
        rssi_dbm: Received signal strength indication (dBm; higher is
            better, typically -30 .. -90).
        noise_dbm: Noise floor (dBm; lower is better, typically -100 .. -60).
    """

    rssi_dbm: float
    noise_dbm: float

    @property
    def snr_margin_db(self) -> float:
        """SNR margin = RSSI - noise, the paper's stability signal."""
        return self.rssi_dbm - self.noise_dbm


class HintProvider(Protocol):
    """Anything that can report current wireless hints."""

    def read_hints(self) -> WirelessHints:
        """Return the adaptor's current RSSI/noise reading."""
        ...


class StaticHintProvider:
    """Fixed hints — used by tests and by wired scenarios where the
    gate must always (or never) pass."""

    def __init__(self, hints: WirelessHints) -> None:
        self._hints = hints

    def read_hints(self) -> WirelessHints:
        """Return the fixed reading."""
        return self._hints


#: A reading comfortably above every MNTP threshold; handed to MNTP in
#: wired experiments so the hint gate never defers.
ALWAYS_FAVORABLE = WirelessHints(rssi_dbm=-40.0, noise_dbm=-95.0)

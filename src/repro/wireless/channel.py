"""The wireless channel state process.

State is advanced lazily on a fixed tick (default 1 s of virtual time):

* **RSSI** = tx power - path loss + shadowing + fading - interference dip

  - shadowing: Ornstein-Uhlenbeck (slow, correlated over ~minutes),
  - fading: AR(1) (fast, correlated over ~seconds),
  - interference episodes: Poisson arrivals with exponential holding
    times; while active they depress RSSI and raise the noise floor —
    the mechanism behind the paper's "highly-varying and lossy channel
    condition" windows.

* **Noise floor** = quiet floor + interference lift + small AR(1) jitter.

The monitor node manipulates ``tx_power_dbm`` (via the access point)
and the interference intensity (via cross-traffic), reproducing the
paper's scriptable degradation tool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.obs.spans import Span
from repro.obs.telemetry import Telemetry
from repro.wireless.hints import WirelessHints


@dataclass
class ChannelParams:
    """Tunable parameters of the channel process.

    Attributes:
        path_loss_db: Static path loss between WAP and client.
        shadow_sigma_db: Stationary std-dev of the shadowing OU process.
        shadow_tau_s: Shadowing correlation time constant.
        fading_sigma_db: Stationary std-dev of the fast fading AR(1).
        fading_rho: AR(1) coefficient per tick for fading.
        quiet_noise_dbm: Noise floor with no interference.
        noise_jitter_db: Small AR(1) jitter on the noise floor.
        interference_rate_hz: Poisson arrival rate of interference episodes.
        interference_mean_duration_s: Mean episode length.
        interference_rssi_dip_db: Mean RSSI depression while active.
        interference_noise_lift_db: Mean noise lift while active.
        occupancy_noise_gain_db: Noise-floor lift per unit channel
            occupancy (co-channel traffic raises the measured noise /
            CCA level on real adaptors); applied when an occupancy
            source is attached.
        tick_s: State-advance granularity.
    """

    path_loss_db: float = 45.0
    shadow_sigma_db: float = 3.0
    shadow_tau_s: float = 120.0
    fading_sigma_db: float = 2.5
    fading_rho: float = 0.7
    quiet_noise_dbm: float = -92.0
    noise_jitter_db: float = 1.0
    interference_rate_hz: float = 1.0 / 180.0
    interference_mean_duration_s: float = 45.0
    interference_rssi_dip_db: float = 12.0
    interference_noise_lift_db: float = 18.0
    occupancy_noise_gain_db: float = 15.0
    tick_s: float = 1.0


class WirelessChannel:
    """Lazily-advanced wireless channel state.

    Args:
        params: Channel process parameters.
        rng: Random stream dedicated to this channel.
        now_fn: Callable returning current virtual time.
        tx_power_dbm: Initial transmit power (adjustable at runtime by
            the access point / monitor node).
        telemetry: Optional telemetry bundle; when given, interference
            episodes are traced as ``channel.interference`` spans and
            counted (the paper's "lossy windows" become queryable).
    """

    def __init__(
        self,
        params: ChannelParams,
        rng: np.random.Generator,
        now_fn,
        tx_power_dbm: float = -10.0,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if params.tick_s <= 0:
            raise ValueError("tick must be positive")
        if not 0.0 <= params.fading_rho < 1.0:
            raise ValueError("fading rho must be in [0, 1)")
        self.params = params
        self._rng = rng
        self._now_fn = now_fn
        self.tx_power_dbm = float(tx_power_dbm)
        self._last_tick = float(now_fn())
        self._shadow_db = 0.0
        self._fading_db = 0.0
        self._noise_jitter_db = 0.0
        # Interference episode state: remaining seconds and strengths.
        self._intf_remaining_s = 0.0
        self._intf_rssi_dip_db = 0.0
        self._intf_noise_lift_db = 0.0
        #: Extra interference pressure in [0, inf): scales episode rate.
        #: The monitor node raises this while cross-traffic is active.
        self.interference_pressure = 1.0
        #: Optional callable returning current channel occupancy [0, 1];
        #: attached by the topology so co-channel traffic lifts the
        #: measured noise floor.
        self.occupancy_fn = None
        self._telemetry = telemetry
        self._intf_span: Optional[Span] = None
        self._episodes_total = (
            telemetry.metrics.counter(
                "channel_interference_episodes_total",
                "interference episodes started on the wireless channel",
            )
            if telemetry is not None
            else None
        )

    # -- state advancement -------------------------------------------------

    def _advance(self) -> None:
        now = float(self._now_fn())
        p = self.params
        while self._last_tick + p.tick_s <= now:
            self._step_once(p.tick_s, self._last_tick + p.tick_s)
            self._last_tick += p.tick_s

    def _step_once(self, dt: float, t: float) -> None:
        p = self.params
        # Shadowing: exact OU discretisation.
        alpha = math.exp(-dt / p.shadow_tau_s)
        shock_sigma = p.shadow_sigma_db * math.sqrt(max(0.0, 1.0 - alpha * alpha))
        self._shadow_db = alpha * self._shadow_db + float(
            self._rng.normal(0.0, shock_sigma)
        )
        # Fast fading AR(1).
        rho = p.fading_rho
        fade_sigma = p.fading_sigma_db * math.sqrt(max(0.0, 1.0 - rho * rho))
        self._fading_db = rho * self._fading_db + float(self._rng.normal(0.0, fade_sigma))
        # Noise jitter AR(1) with the same rho as fading.
        nj_sigma = p.noise_jitter_db * math.sqrt(max(0.0, 1.0 - rho * rho))
        self._noise_jitter_db = rho * self._noise_jitter_db + float(
            self._rng.normal(0.0, nj_sigma)
        )
        # Interference episodes.
        if self._intf_remaining_s > 0:
            self._intf_remaining_s = max(0.0, self._intf_remaining_s - dt)
            if self._intf_remaining_s <= 0.0:
                self._intf_rssi_dip_db = 0.0
                self._intf_noise_lift_db = 0.0
                if self._intf_span is not None:
                    self._intf_span.end(t=t)
                    self._intf_span = None
        else:
            rate = p.interference_rate_hz * max(0.0, self.interference_pressure)
            if rate > 0 and self._rng.random() < 1.0 - math.exp(-rate * dt):
                self._intf_remaining_s = float(
                    self._rng.exponential(p.interference_mean_duration_s)
                )
                self._intf_rssi_dip_db = float(
                    self._rng.normal(p.interference_rssi_dip_db, 3.0)
                )
                self._intf_noise_lift_db = float(
                    self._rng.normal(p.interference_noise_lift_db, 4.0)
                )
                if self._telemetry is not None:
                    self._episodes_total.inc()
                    self._intf_span = self._telemetry.spans.begin(
                        "channel.interference",
                        t=t,
                        rssi_dip_db=round(self._intf_rssi_dip_db, 3),
                        noise_lift_db=round(self._intf_noise_lift_db, 3),
                    )

    # -- reads --------------------------------------------------------------

    def read_hints(self) -> WirelessHints:
        """Current (RSSI, noise) as the adaptor would report them."""
        self._advance()
        p = self.params
        rssi = (
            self.tx_power_dbm
            - p.path_loss_db
            + self._shadow_db
            + self._fading_db
            - max(0.0, self._intf_rssi_dip_db)
        )
        noise = p.quiet_noise_dbm + self._noise_jitter_db + max(
            0.0, self._intf_noise_lift_db
        )
        if self.occupancy_fn is not None:
            noise += p.occupancy_noise_gain_db * max(0.0, min(1.0, self.occupancy_fn()))
        return WirelessHints(rssi_dbm=rssi, noise_dbm=noise)

    def interference_active(self) -> bool:
        """Whether an interference episode is in progress."""
        self._advance()
        return self._intf_remaining_s > 0

    # -- control (used by the WAP / monitor node) ----------------------------

    def set_tx_power(self, dbm: float) -> None:
        """Change the transmit power (legal-range clamped to [-30, 0] dBm
        relative scale used in the testbed)."""
        self.tx_power_dbm = float(min(0.0, max(-30.0, dbm)))

    def set_interference_pressure(self, pressure: float) -> None:
        """Scale the interference episode arrival rate (>= 0)."""
        self.interference_pressure = max(0.0, float(pressure))

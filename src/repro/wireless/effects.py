"""Channel state -> per-packet (loss, extra delay) mapping.

This is the physical coupling that makes the paper's story work: when
the SNR margin is poor and/or the channel is occupied by cross-traffic,
802.11 stations see retransmissions, rate fallback and queueing — i.e.
*extra one-way delay* and *loss* exactly when the hints look bad.  SNTP
ignores the hints and samples through these episodes; MNTP defers.

The mapping:

* loss probability rises logistically as SNR margin falls through
  ``snr_loss_midpoint_db``, and linearly with occupancy;
* extra delay = contention term (grows with occupancy, heavy-tailed)
  + retransmission term (grows as SNR degrades, since each retry costs
  a backoff);
* a small floor of delay jitter is always present (medium access).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.net.link import LinkEffect
from repro.wireless.channel import WirelessChannel
from repro.wireless.crosstraffic import CrossTrafficGenerator


@dataclass
class EffectsParams:
    """Tunables for the channel-to-packet-fate mapping.

    Attributes:
        snr_loss_midpoint_db: SNR margin at which loss reaches half of
            ``max_snr_loss``.
        snr_loss_steepness: Logistic steepness (per dB).
        max_snr_loss: Loss probability ceiling from poor SNR alone.
        occupancy_loss_gain: Extra loss per unit occupancy.
        base_jitter_s: Always-present medium-access jitter scale.
        contention_delay_s: Scale of queueing delay at full occupancy.
        retry_delay_s: Per-retry backoff cost.
        max_retries: 802.11 retry limit before the frame is dropped.
    """

    snr_loss_midpoint_db: float = 12.0
    snr_loss_steepness: float = 0.45
    max_snr_loss: float = 0.85
    occupancy_loss_gain: float = 0.10
    base_jitter_s: float = 0.0015
    contention_delay_s: float = 0.080
    retry_delay_s: float = 0.018
    max_retries: int = 7


class ChannelEffects:
    """Samples a :class:`LinkEffect` for each packet crossing the hop.

    Args:
        channel: The wireless channel whose hints drive the mapping.
        rng: Random stream for per-packet draws.
        cross_traffic: Optional occupancy source.
        params: Mapping tunables.
    """

    def __init__(
        self,
        channel: WirelessChannel,
        rng: np.random.Generator,
        cross_traffic: Optional[CrossTrafficGenerator] = None,
        params: EffectsParams = EffectsParams(),
    ) -> None:
        self.channel = channel
        self._rng = rng
        self.cross_traffic = cross_traffic
        self.params = params

    def _per_attempt_error_prob(self, snr_margin_db: float, occupancy: float) -> float:
        p = self.params
        logistic = 1.0 / (
            1.0 + math.exp(p.snr_loss_steepness * (snr_margin_db - p.snr_loss_midpoint_db))
        )
        prob = p.max_snr_loss * logistic + p.occupancy_loss_gain * occupancy
        return min(0.98, max(0.0, prob))

    def sample(self) -> LinkEffect:
        """Draw the fate of one packet under current channel conditions."""
        p = self.params
        hints = self.channel.read_hints()
        occupancy = self.cross_traffic.occupancy() if self.cross_traffic else 0.0
        err = self._per_attempt_error_prob(hints.snr_margin_db, occupancy)

        # 802.11 link-layer retransmission loop: each failed attempt adds
        # a backoff; exceeding the retry limit loses the frame.
        retries = 0
        while retries <= p.max_retries and self._rng.random() < err:
            retries += 1
        if retries > p.max_retries:
            return LinkEffect(lost=True)

        delay = float(self._rng.exponential(p.base_jitter_s))
        retry_delay = retries * p.retry_delay_s * float(self._rng.uniform(0.7, 1.5))
        delay += retry_delay
        if occupancy > 0:
            # Queueing behind cross-traffic: heavy-tailed in occupancy.
            mean_q = p.contention_delay_s * (occupancy ** 2) / max(0.05, 1.0 - occupancy)
            delay += float(self._rng.exponential(mean_q)) if mean_q > 0 else 0.0
        return LinkEffect(extra_delay=delay, lost=False, retry_delay=retry_delay)

    def as_hook(self) -> Callable[[], LinkEffect]:
        """Adapter for :class:`repro.net.link.Link`'s ``effect_hook``."""
        return self.sample
